package compress

import (
	"bytes"
	"testing"

	"approxnoc/internal/value"
	"approxnoc/internal/workload"
)

// The scratch-path equivalence proof: every ScratchEncoder must produce
// bit-identical encodings to its allocating Compress, including all
// observable codec state (statistics, dictionary tables, budget
// consumption). Two mirrored codec instances are driven with the same
// block stream — one through Compress, one through CompressScratch — and
// every encoding plus the terminal Stats must agree exactly. The scratch
// result is snapshotted before the next call, per the ownership contract.

// encSnapshot deep-copies the parts of an Encoded the scratch path reuses.
type encSnapshot struct {
	scheme       Scheme
	numWords     int
	dtype        value.DataType
	approximable bool
	bits         int
	payload      []byte
	words        []WordEnc
}

func snapshotEnc(e *Encoded) encSnapshot {
	return encSnapshot{
		scheme:       e.Scheme,
		numWords:     e.NumWords,
		dtype:        e.DType,
		approximable: e.Approximable,
		bits:         e.Bits,
		payload:      append([]byte(nil), e.Payload...),
		words:        append([]WordEnc(nil), e.Words...),
	}
}

func encsEqual(a, b encSnapshot) bool {
	if a.scheme != b.scheme || a.numWords != b.numWords || a.dtype != b.dtype ||
		a.approximable != b.approximable || a.bits != b.bits {
		return false
	}
	if !bytes.Equal(a.payload, b.payload) {
		return false
	}
	if len(a.words) != len(b.words) {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

func scratchBlocks(t testing.TB, n int) []*value.Block {
	t.Helper()
	m, err := workload.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	src := m.NewSource(11, 0.75)
	blocks := make([]*value.Block, n)
	for i := range blocks {
		blocks[i] = src.NextBlock()
	}
	// Edge shapes the generator rarely produces.
	if n >= 2 {
		blocks[0] = value.NewBlock(0, value.Int32, true)
		blocks[1] = value.NewBlock(value.WordsPerBlock, value.Int32, true)
	}
	return blocks
}

// scratchCodecs builds mirrored instances of every ScratchEncoder scheme.
func scratchCodecs(t *testing.T) map[string][2]Codec {
	t.Helper()
	pair := func(mk func() (Codec, error)) [2]Codec {
		a, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		return [2]Codec{a, b}
	}
	return map[string][2]Codec{
		"baseline": pair(func() (Codec, error) { return NewBaseline(), nil }),
		"fpcomp":   pair(func() (Codec, error) { return NewFPComp(), nil }),
		"fpvaxx":   pair(func() (Codec, error) { return NewFPVaxx(10) }),
		"fpvaxx-windowed": pair(func() (Codec, error) {
			return NewFPVaxxWindowed(5, 16, 2.0)
		}),
		"bdcomp": pair(func() (Codec, error) { return NewBDComp(), nil }),
		"bdvaxx": pair(func() (Codec, error) { return NewBDVaxx(10) }),
		"adaptive-fpvaxx": pair(func() (Codec, error) {
			inner, err := NewFPVaxx(10)
			if err != nil {
				return nil, err
			}
			return NewAdaptive(inner, AdaptiveConfig{WindowBlocks: 8, MinRatio: 1.05, ProbeEvery: 2})
		}),
	}
}

func TestScratchEquivalence(t *testing.T) {
	blocks := scratchBlocks(t, 200)
	for name, pair := range scratchCodecs(t) {
		t.Run(name, func(t *testing.T) {
			plain, scratch := pair[0], pair[1]
			se, ok := scratch.(ScratchEncoder)
			if !ok {
				t.Fatalf("%s does not implement ScratchEncoder", name)
			}
			for i, blk := range blocks {
				want := snapshotEnc(plain.Compress(1, blk))
				got := snapshotEnc(se.CompressScratch(1, blk))
				if !encsEqual(want, got) {
					t.Fatalf("block %d: scratch encoding diverged\nCompress: %+v\nScratch:  %+v", i, want, got)
				}
			}
			if plain.Stats() != scratch.Stats() {
				t.Fatalf("stats diverged:\nCompress: %+v\nScratch:  %+v", plain.Stats(), scratch.Stats())
			}
		})
	}
}

// TestScratchEquivalenceDict mirrors two dictionary fabrics through the
// full compress/decompress/notification cycle — the dict encoder PMT
// state evolves with traffic, so the proof must hold while the tables
// churn, not just on a cold codec.
func TestScratchEquivalenceDict(t *testing.T) {
	for _, scheme := range []Scheme{DIComp, DIVaxx} {
		t.Run(scheme.String(), func(t *testing.T) {
			const nodes = 4
			factory, err := FactoryFor(scheme, nodes, 10)
			if err != nil {
				t.Fatal(err)
			}
			fPlain := NewFabric(nodes, factory)
			fScratch := NewFabric(nodes, factory)
			blocks := scratchBlocks(t, 400)
			for i, blk := range blocks {
				src, dst := i%nodes, (i+1+i/7)%nodes
				if src == dst {
					dst = (dst + 1) % nodes
				}
				want := snapshotEnc(fPlain.Codec(src).Compress(dst, blk))
				se := fScratch.Codec(src).(ScratchEncoder)
				got := snapshotEnc(se.CompressScratch(dst, blk))
				if !encsEqual(want, got) {
					t.Fatalf("block %d (%d->%d): dict scratch encoding diverged", i, src, dst)
				}
				// Advance both decoder sides identically so the PMTs churn.
				outP, nP := fPlain.Codec(dst).Decompress(src, fakeEnc(want))
				outS, nS := fScratch.Codec(dst).Decompress(src, fakeEnc(got))
				fPlain.Deliver(nP)
				fScratch.Deliver(nS)
				if len(outP.Words) != len(outS.Words) {
					t.Fatalf("block %d: decode lengths diverged", i)
				}
				for j := range outP.Words {
					if outP.Words[j] != outS.Words[j] {
						t.Fatalf("block %d word %d: decode diverged %#x vs %#x", i, j, outP.Words[j], outS.Words[j])
					}
				}
			}
			if fPlain.Stats() != fScratch.Stats() {
				t.Fatalf("fabric stats diverged:\n%+v\n%+v", fPlain.Stats(), fScratch.Stats())
			}
		})
	}
}

// fakeEnc rebuilds an Encoded from a snapshot for the decode side.
func fakeEnc(s encSnapshot) *Encoded {
	return &Encoded{
		Scheme: s.scheme, NumWords: s.numWords, DType: s.dtype,
		Approximable: s.approximable, Bits: s.bits, Payload: s.payload, Words: s.words,
	}
}

// TestCompressTransientFallback pins the helper's dispatch: scratch-aware
// codecs go through CompressScratch, others through Compress.
func TestCompressTransientFallback(t *testing.T) {
	blk := scratchBlocks(t, 1)[0]
	c := NewFPComp()
	enc1 := CompressTransient(c, 1, blk)
	enc2 := CompressTransient(c, 1, blk)
	if enc1 != enc2 {
		t.Fatalf("scratch-capable codec should return its reused scratch header")
	}
	// A codec without the scratch path must keep allocating fresh results.
	nc := nonScratchCodec{inner: NewFPComp()}
	enc3 := CompressTransient(nc, 1, blk)
	enc4 := CompressTransient(nc, 1, blk)
	if enc3 == enc4 {
		t.Fatalf("fallback path must allocate fresh encodings")
	}
}

// nonScratchCodec hides the embedded codec's CompressScratch method by
// not forwarding it: interface assertion on the wrapper fails.
type nonScratchCodec struct{ inner Codec }

func (n nonScratchCodec) Scheme() Scheme { return n.inner.Scheme() }
func (n nonScratchCodec) Compress(dst int, blk *value.Block) *Encoded {
	return n.inner.Compress(dst, blk)
}
func (n nonScratchCodec) Decompress(src int, enc *Encoded) (*value.Block, []Notification) {
	return n.inner.Decompress(src, enc)
}
func (n nonScratchCodec) HandleNotification(m Notification) []Notification {
	return n.inner.HandleNotification(m)
}
func (n nonScratchCodec) Stats() OpStats { return n.inner.Stats() }
