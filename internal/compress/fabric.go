package compress

import (
	"fmt"

	"approxnoc/internal/value"
)

// Fabric couples the codecs of every node with instant notification
// delivery. It is the offline (non-cycle-accurate) transport used by the
// cache-simulator substrate and by tests; the cycle-accurate NoC delivers
// the same notifications as real single-flit control packets instead.
type Fabric struct {
	codecs []Codec
}

// NewFabric builds an n-node fabric, invoking factory for each node.
func NewFabric(n int, factory func(node int) Codec) *Fabric {
	f := &Fabric{codecs: make([]Codec, n)}
	for i := range f.codecs {
		f.codecs[i] = factory(i)
	}
	return f
}

// Codec returns the codec at node i.
func (f *Fabric) Codec(i int) Codec { return f.codecs[i] }

// Nodes returns the fabric size.
func (f *Fabric) Nodes() int { return len(f.codecs) }

// Transfer compresses blk at src, decompresses it at dst, and drains all
// resulting dictionary notifications to quiescence. The returned block is
// what the destination observes (possibly approximated). The encoding is
// consumed within the call, so Transfer rides the codec's zero-alloc
// scratch path when it has one.
func (f *Fabric) Transfer(src, dst int, blk *value.Block) *value.Block {
	enc := CompressTransient(f.codecs[src], dst, blk)
	out, notifs := f.codecs[dst].Decompress(src, enc)
	f.deliver(notifs)
	return out
}

// Deliver routes notifications to their target codecs until no more are
// produced — for callers that drive Compress/Decompress directly (e.g.
// the serve gateway, which needs the intermediate Encoded for accounting)
// and must still settle the dictionary-consistency protocol.
func (f *Fabric) Deliver(notifs []Notification) { f.deliver(notifs) }

// deliver routes notifications to their target codecs until no more are
// produced.
func (f *Fabric) deliver(notifs []Notification) {
	for len(notifs) > 0 {
		n := notifs[0]
		notifs = notifs[1:]
		if n.To < 0 || n.To >= len(f.codecs) {
			continue
		}
		notifs = append(notifs, f.codecs[n.To].HandleNotification(n)...)
	}
}

// Stats aggregates operation counts across all nodes.
func (f *Fabric) Stats() OpStats {
	var s OpStats
	for _, c := range f.codecs {
		s.Add(c.Stats())
	}
	return s
}

// FactoryFor returns a per-node codec constructor for the scheme, sized
// for an n-node network; VAXX schemes use thresholdPct.
func FactoryFor(scheme Scheme, n, thresholdPct int) (func(node int) Codec, error) {
	return FactoryWithDict(scheme, DefaultDictConfig(n), thresholdPct)
}

// FactoryWithDict is FactoryFor with explicit dictionary parameters, used
// by the PMT-size ablation.
func FactoryWithDict(scheme Scheme, cfg DictConfig, thresholdPct int) (func(node int) Codec, error) {
	switch scheme {
	case Baseline:
		return func(int) Codec { return NewBaseline() }, nil
	case FPComp:
		return func(int) Codec { return NewFPComp() }, nil
	case BDComp:
		return func(int) Codec { return NewBDComp() }, nil
	case BDVaxx:
		if _, err := NewBDVaxx(thresholdPct); err != nil {
			return nil, err
		}
		return func(int) Codec {
			c, _ := NewBDVaxx(thresholdPct)
			return c
		}, nil
	case FPVaxx:
		c, err := NewFPVaxx(thresholdPct)
		if err != nil {
			return nil, err
		}
		_ = c // constructor validated; build per node below
		return func(int) Codec {
			cc, _ := NewFPVaxx(thresholdPct)
			return cc
		}, nil
	case DIComp:
		return func(node int) Codec {
			c, err := NewDIComp(node, cfg)
			if err != nil {
				panic(err)
			}
			return c
		}, nil
	case DIVaxx:
		if _, err := NewDIVaxx(0, cfg, thresholdPct); err != nil {
			return nil, err
		}
		return func(node int) Codec {
			c, _ := NewDIVaxx(node, cfg, thresholdPct)
			return c
		}, nil
	default:
		return nil, fmt.Errorf("compress: unknown scheme %v", scheme)
	}
}
