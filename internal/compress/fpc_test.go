package compress

import (
	"testing"
	"testing/quick"

	"approxnoc/internal/value"
)

func fpRoundTrip(t *testing.T, c Codec, blk *value.Block) *value.Block {
	t.Helper()
	enc := c.Compress(1, blk)
	dec, notifs := c.Decompress(0, enc)
	if len(notifs) != 0 {
		t.Fatalf("frequent-pattern codec emitted notifications: %v", notifs)
	}
	if len(dec.Words) != len(blk.Words) {
		t.Fatalf("decoded %d words, want %d", len(dec.Words), len(blk.Words))
	}
	for i, we := range enc.Words {
		if dec.Words[i] != we.Decoded {
			t.Fatalf("word %d decoded %#x, encoder expected %#x", i, dec.Words[i], we.Decoded)
		}
	}
	return dec
}

func TestFPCompExactRoundTrip(t *testing.T) {
	c := NewFPComp()
	blk := value.BlockFromI32([]int32{0, 0, 5, -3, 127, -128, 30000, -30000, 0x12340000 >> 0, 258, 1 << 30, -1}, false)
	blk.Words[8] = 0x12340000 // halfword padded with zero halfword
	dec := fpRoundTrip(t, c, blk)
	if !dec.Equal(blk) {
		t.Fatalf("exact FP-COMP altered data:\n got %v\nwant %v", dec.Words, blk.Words)
	}
}

func TestFPCompPatternClasses(t *testing.T) {
	c := NewFPComp().(*fpCodec)
	cases := []struct {
		w    uint32
		bits int // prefix + data
		kind WordKind
	}{
		{0x00000005, 3 + 4, ExactWord},  // 4-bit SE
		{0xFFFFFFFB, 3 + 4, ExactWord},  // -5, 4-bit SE
		{0x0000007F, 3 + 8, ExactWord},  // byte SE
		{0xFFFFFF80, 3 + 8, ExactWord},  // -128, byte SE
		{0x00007FFF, 3 + 16, ExactWord}, // halfword SE
		{0x12340000, 3 + 16, ExactWord}, // half padded with zero half
		{0xFFFF0005, 3 + 16, ExactWord}, // two byte-SE halfwords
		{0x12345678, 3 + 32, RawWord},   // incompressible
	}
	for _, cse := range cases {
		enc := c.encodeWord(cse.w, 0, value.Int32)
		if enc.Kind != cse.kind || enc.Bits != cse.bits {
			t.Errorf("word %#x: kind=%v bits=%d, want kind=%v bits=%d",
				cse.w, enc.Kind, enc.Bits, cse.kind, cse.bits)
		}
		if enc.Decoded != cse.w {
			t.Errorf("word %#x: exact path altered value to %#x", cse.w, enc.Decoded)
		}
	}
}

func TestFPCompPriorityOrder(t *testing.T) {
	c := NewFPComp().(*fpCodec)
	// 5 matches 4-bit SE, byte SE and halfword SE; priority must pick 4-bit.
	enc := c.encodeWord(5, 0, value.Int32)
	if enc.Bits != 3+4 {
		t.Fatalf("word 5 encoded with %d bits, want the 4-bit SE row", enc.Bits)
	}
}

func TestFPCompZeroRunLength(t *testing.T) {
	c := NewFPComp()
	// 10 zeros -> one run of 8 + one run of 2: 2*(3+3)=12 bits.
	blk := value.BlockFromI32(make([]int32, 10), false)
	enc := c.Compress(1, blk)
	if enc.Bits != 12 {
		t.Fatalf("10-zero block = %d bits, want 12", enc.Bits)
	}
	dec := fpRoundTrip(t, c, blk)
	if !dec.Equal(blk) {
		t.Fatal("zero block mangled")
	}
}

func TestFPCompRoundTripProperty(t *testing.T) {
	c := NewFPComp()
	f := func(words []uint32) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 16 {
			words = words[:16]
		}
		blk := &value.Block{Words: words, DType: value.Int32}
		enc := c.Compress(1, blk)
		dec, _ := c.Decompress(0, enc)
		return dec.Equal(blk) // exact scheme must never alter data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFPVaxxApproximatesWithinThreshold(t *testing.T) {
	for _, pct := range []int{5, 10, 20} {
		c, err := NewFPVaxx(pct)
		if err != nil {
			t.Fatal(err)
		}
		f := func(words []uint32) bool {
			if len(words) == 0 {
				return true
			}
			if len(words) > 16 {
				words = words[:16]
			}
			blk := &value.Block{Words: words, DType: value.Int32, Approximable: true}
			enc := c.Compress(1, blk)
			dec, _ := c.Decompress(0, enc)
			bound := float64(pct)/100 + 1e-9
			for i := range blk.Words {
				if value.RelError(blk.Words[i], dec.Words[i], value.Int32) > bound {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("threshold %d%%: %v", pct, err)
		}
	}
}

func TestFPVaxxFloatThresholdProperty(t *testing.T) {
	c, _ := NewFPVaxx(10)
	f := func(words []uint32) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 16 {
			words = words[:16]
		}
		blk := &value.Block{Words: words, DType: value.Float32, Approximable: true}
		enc := c.Compress(1, blk)
		dec, _ := c.Decompress(0, enc)
		for i := range blk.Words {
			if value.RelError(blk.Words[i], dec.Words[i], value.Float32) > 0.1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFPVaxxNonApproximableIsExact(t *testing.T) {
	c, _ := NewFPVaxx(20)
	blk := value.BlockFromI32([]int32{1000000, 77777, -31313, 123456}, false) // not approximable
	enc := c.Compress(1, blk)
	dec, _ := c.Decompress(0, enc)
	if !dec.Equal(blk) {
		t.Fatal("FP-VAXX altered non-approximable data")
	}
	for _, we := range enc.Words {
		if we.Kind == ApproxWord {
			t.Fatal("approximate encoding on non-approximable block")
		}
	}
}

func TestFPVaxxImprovesCompression(t *testing.T) {
	// Values near-but-not-exactly pattern matches: large values whose low
	// halfword is almost zero. Exact FP-COMP must send them raw; FP-VAXX
	// can wipe the low bits and use the half-padded row.
	words := make([]int32, 16)
	for i := range words {
		words[i] = int32(0x12340000 + 7 + i) // low halfword = small noise
	}
	exact := NewFPComp()
	vaxx, _ := NewFPVaxx(10)
	be := exact.Compress(1, value.BlockFromI32(words, true))
	bv := vaxx.Compress(1, value.BlockFromI32(words, true))
	if bv.Bits >= be.Bits {
		t.Fatalf("FP-VAXX %d bits, FP-COMP %d bits; approximation should win", bv.Bits, be.Bits)
	}
	vs := vaxx.Stats()
	if vs.WordsApprox == 0 {
		t.Fatal("FP-VAXX made no approximate matches")
	}
	if q := vs.DataQuality(); q < 0.9 {
		t.Fatalf("data quality %g below the scheme's own 10%% bound", q)
	}
}

func TestFPVaxxApproximatesSmallValuesToZeroRun(t *testing.T) {
	// At 50% threshold, value 64 can deviate by 32: still not zero.
	// Large value 1<<20 with low halfword noise compresses approximately.
	c, _ := NewFPVaxx(50)
	blk := value.BlockFromI32([]int32{1 << 20, 1<<20 + 3, 1<<20 - 1, 1 << 20}, true)
	enc := c.Compress(1, blk)
	comp := 0
	for _, we := range enc.Words {
		if we.Kind != RawWord {
			comp++
		}
	}
	if comp != 4 {
		t.Fatalf("only %d/4 words compressed at 50%% threshold", comp)
	}
}

func TestFPVaxxSpecialFloatsUntouched(t *testing.T) {
	c, _ := NewFPVaxx(20)
	blk := value.BlockFromF32([]float32{0, 0, 0, 0}, true)
	dec := fpRoundTrip(t, c, blk)
	if !dec.Equal(blk) {
		t.Fatal("zero floats altered")
	}
	// Zero floats are bit-pattern zero: they compress as a zero run exactly.
	s := c.Stats()
	if s.WordsApprox != 0 {
		t.Fatal("special floats were approximated")
	}
}

func TestFPCompStatsAccounting(t *testing.T) {
	c := NewFPComp()
	blk := value.BlockFromI32([]int32{0, 5, 0x7FFFFFF, 3}, false)
	enc := c.Compress(1, blk)
	s := c.Stats()
	if s.BlocksIn != 1 || s.WordsIn != 4 {
		t.Fatalf("stats %+v", s)
	}
	if s.WordsExact != 3 || s.WordsRaw != 1 {
		t.Fatalf("exact=%d raw=%d, want 3/1", s.WordsExact, s.WordsRaw)
	}
	if s.BitsIn != 128 || s.BitsOut != uint64(enc.Bits) {
		t.Fatalf("bits in/out %d/%d", s.BitsIn, s.BitsOut)
	}
	if s.CompressionRatio() <= 1 {
		t.Fatalf("compressible block ratio %g", s.CompressionRatio())
	}
}

func TestEncodedPayloadBytes(t *testing.T) {
	e := &Encoded{Bits: 13}
	if e.PayloadBytes() != 2 {
		t.Fatalf("13 bits = %d bytes, want 2", e.PayloadBytes())
	}
	e.Bits = 16
	if e.PayloadBytes() != 2 {
		t.Fatal("16 bits should be 2 bytes")
	}
}

func TestSchemeStringsAndParse(t *testing.T) {
	for _, s := range AllSchemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("round trip of %v failed: %v %v", s, got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if !FPVaxx.IsVaxx() || !DIVaxx.IsVaxx() || FPComp.IsVaxx() || Baseline.IsVaxx() {
		t.Fatal("IsVaxx misclassifies")
	}
}

func TestBitIORoundTripProperty(t *testing.T) {
	f := func(fields []uint32, widths []uint8) bool {
		n := len(fields)
		if len(widths) < n {
			n = len(widths)
		}
		w := &bitWriter{}
		want := make([]uint32, n)
		ws := make([]int, n)
		for i := 0; i < n; i++ {
			width := int(widths[i] % 33) // 0..32
			ws[i] = width
			mask := uint32(0)
			if width > 0 {
				mask = ^uint32(0) >> uint(32-width)
			}
			want[i] = fields[i] & mask
			w.WriteBits(fields[i], width)
		}
		r := newBitReader(w.Bytes())
		for i := 0; i < n; i++ {
			if got := r.ReadBits(ws[i]); got != want[i] {
				return false
			}
		}
		return !r.Failed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitReaderOverrun(t *testing.T) {
	r := newBitReader([]byte{0xFF})
	r.ReadBits(8)
	if r.Failed() {
		t.Fatal("in-bounds read flagged")
	}
	if v := r.ReadBits(1); v != 0 || !r.Failed() {
		t.Fatal("overrun not detected")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	c := NewBaseline()
	blk := value.BlockFromI32([]int32{1, -2, 3, 0x7FFFFFFF}, true)
	enc := c.Compress(1, blk)
	if enc.Bits != 128 {
		t.Fatalf("baseline bits %d, want 128", enc.Bits)
	}
	dec, _ := c.Decompress(0, enc)
	if !dec.Equal(blk) {
		t.Fatal("baseline altered data")
	}
	if c.Stats().CompressionRatio() != 1 {
		t.Fatalf("baseline ratio %g", c.Stats().CompressionRatio())
	}
}

func TestOpStatsDerived(t *testing.T) {
	s := OpStats{WordsIn: 10, WordsExact: 4, WordsApprox: 2, WordsRaw: 4, SumRelError: 0.5}
	if f := s.EncodedWordFraction(); f != 0.6 {
		t.Fatalf("encoded fraction %g", f)
	}
	if f := s.ApproxWordFraction(); f != 0.2 {
		t.Fatalf("approx fraction %g", f)
	}
	if q := s.DataQuality(); q != 0.95 {
		t.Fatalf("quality %g", q)
	}
	var zero OpStats
	if zero.DataQuality() != 1 || zero.CompressionRatio() != 1 || zero.EncodedWordFraction() != 0 {
		t.Fatal("zero-stats derived values wrong")
	}
	var sum OpStats
	sum.Add(s)
	sum.Add(s)
	if sum.WordsIn != 20 || sum.SumRelError != 1.0 {
		t.Fatalf("Add wrong: %+v", sum)
	}
}
