package compress

import (
	"fmt"

	"approxnoc/internal/approx"
	"approxnoc/internal/quality"
	"approxnoc/internal/tcam"
	"approxnoc/internal/value"
)

// DictConfig parameterizes the dictionary-based schemes (Fig. 7/8).
type DictConfig struct {
	// Nodes is the network size; encoder entries keep one index slot per
	// destination and decoder entries one valid bit per source.
	Nodes int
	// Entries is the PMT capacity (Table 1 default: 8).
	Entries int
	// CandidateCap bounds the decoder's recurrent-pattern tracker.
	CandidateCap int
	// PromoteThreshold is how many sightings promote a candidate into the
	// decoder PMT.
	PromoteThreshold int
	// PendingCap bounds concurrent evictions awaiting invalidate acks.
	PendingCap int
	// AgingPeriod is how many decoded words make one decoder aging
	// epoch (frequency halving plus any configured GC pass). 0 selects
	// the default of 4096.
	AgingPeriod int
	// GCAgeOutEpochs reclaims decoder entries that stay unreferenced
	// (frequency at zero after halving) for this many consecutive aging
	// epochs, through the same invalidate/ack handshake as a
	// promotion eviction. 0 disables cold-pattern age-out.
	GCAgeOutEpochs int
	// GCPressureSweep bounds how many of the coldest decoder entries a
	// capacity-pressure sweep may reclaim per aging epoch. 0 disables
	// the sweep.
	GCPressureSweep int
	// GCPressureMin is how many promotions the cold-entry guard must
	// block within one aging epoch before the sweep fires. 0 selects
	// the default of 8 when GCPressureSweep is enabled.
	GCPressureMin int
}

// DefaultDictConfig returns the Table 1 dictionary parameters for an
// n-node network.
func DefaultDictConfig(n int) DictConfig {
	return DictConfig{Nodes: n, Entries: 8, CandidateCap: 32, PromoteThreshold: 4, PendingCap: 4}
}

// decoder frequency counters are halved every agingPeriod decoded words so
// formerly-hot patterns can age out of the PMT instead of pinning it.
const agingPeriod = 4096

func (c *DictConfig) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("compress: dict config needs Nodes > 0, got %d", c.Nodes)
	}
	if c.Entries <= 0 {
		return fmt.Errorf("compress: dict config needs Entries > 0, got %d", c.Entries)
	}
	if c.CandidateCap <= 0 {
		c.CandidateCap = 4 * c.Entries
	}
	if c.PromoteThreshold <= 0 {
		c.PromoteThreshold = 2
	}
	if c.PendingCap <= 0 {
		c.PendingCap = 4
	}
	if c.AgingPeriod < 0 {
		return fmt.Errorf("compress: dict config needs AgingPeriod >= 0, got %d", c.AgingPeriod)
	}
	if c.AgingPeriod == 0 {
		c.AgingPeriod = agingPeriod
	}
	if c.GCAgeOutEpochs < 0 || c.GCPressureSweep < 0 || c.GCPressureMin < 0 {
		return fmt.Errorf("compress: dict GC knobs must be >= 0 (age-out %d, sweep %d, min %d)",
			c.GCAgeOutEpochs, c.GCPressureSweep, c.GCPressureMin)
	}
	if c.GCPressureSweep > 0 && c.GCPressureMin == 0 {
		c.GCPressureMin = 8
	}
	return nil
}

func indexBits(entries int) int {
	b := 0
	for 1<<b < entries {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// candidateTable is the decoder's bounded recurrent-pattern tracker: a
// small LFU table counting raw word sightings. The decoder consults it
// for every raw word, so the lookup is tuned for that stream: pattern
// and data type pack into one 64-bit key (a single compare per entry,
// one cache stream), and the same pass that misses also finds the
// coldest entry so a full-table replacement — the common case under a
// transient pattern stream — needs no second sweep. A hash-map variant
// measured slower: the stream is replacement-heavy, and per-sighting
// hashing plus delete/insert churn cost more than the short scan.
type candidateTable struct {
	cap   int
	keys  []uint64 // pattern | dtype<<32
	count []int
	// victim caches the index of the first count-1 entry, or -1 when
	// unknown. Counts never decrease, so once established it stays the
	// first count-1 index until that entry itself is bumped or indices
	// shift (drop/restore), letting back-to-back replacements — the
	// common case under a transient stream — skip the min scan. The
	// replacement choice is identical with or without the cache, so
	// snapshot/restore (which resets it to unknown) cannot diverge.
	victim int
}

func candKey(p value.Word, dt value.DataType) uint64 {
	return uint64(p) | uint64(dt)<<32
}

func newCandidateTable(cap int) *candidateTable {
	return &candidateTable{cap: cap, victim: -1}
}

// pat and dtype unpack entry i (the snapshot codec keeps its wire format
// in terms of the split fields).
func (t *candidateTable) pat(i int) value.Word       { return value.Word(t.keys[i]) }
func (t *candidateTable) dtype(i int) value.DataType { return value.DataType(t.keys[i] >> 32) }

// bump records one sighting and returns the updated count. The key
// search touches only the packed key slice — one load and compare per
// entry — so tracked-pattern sightings never read the counts; the
// victim scan runs only when a miss must replace in a full table.
func (t *candidateTable) bump(p value.Word, dt value.DataType) int {
	k := candKey(p, dt)
	for i, q := range t.keys {
		if q == k {
			t.count[i]++
			if i == t.victim {
				t.victim = -1 // no longer count 1
			}
			return t.count[i]
		}
	}
	if len(t.keys) < t.cap {
		t.keys = append(t.keys, k)
		t.count = append(t.count, 1)
		return 1
	}
	// Replace the coldest candidate: the first minimal-count index. When
	// the minimum is 1 that is the first count-1 index, which the cache
	// remembers; otherwise a full scan finds it, and the replaced slot —
	// then the only count-1 entry — becomes the new cached victim.
	v := t.victim
	if v < 0 {
		best := t.count[0]
		v = 0
		for i := 1; i < len(t.count); i++ {
			if t.count[i] < best {
				v, best = i, t.count[i]
			}
		}
		t.victim = v
	}
	t.keys[v], t.count[v] = k, 1
	return 1
}

// drop removes a candidate (after promotion).
func (t *candidateTable) drop(p value.Word, dt value.DataType) {
	k := candKey(p, dt)
	for i, q := range t.keys {
		if q == k {
			last := len(t.keys) - 1
			t.keys[i], t.count[i] = t.keys[last], t.count[last]
			t.keys = t.keys[:last]
			t.count = t.count[:last]
			t.victim = -1 // indices shifted
			return
		}
	}
}

// destRef is one encoder-PMT per-destination slot: the encoded index the
// destination decoder assigned, plus the original pattern recorded there
// (Fig. 8's "idx / op" pairs; for exact DI-COMP orig always equals the
// entry pattern).
type destRef struct {
	valid bool
	idx   int
	orig  value.Word
}

// decEntry is one decoder-PMT row (Fig. 7b): pattern, frequency counter
// and the vector of valid bits naming every encoder that maps to it.
type decEntry struct {
	valid     bool
	pattern   value.Word
	dtype     value.DataType
	freq      uint64
	validBits []bool
	locked    bool // eviction handshake in progress
}

// pendingInstall tracks an eviction awaiting invalidate acks before the
// slot can be reused for a newly promoted pattern — or, for GC
// reclaims, simply freed.
type pendingInstall struct {
	slot      int
	pattern   value.Word
	dtype     value.DataType
	requester int // source node that triggered the promotion
	awaiting  map[int]bool
	gc        bool // reclaim only: free the slot, install nothing
}

// dictCodec implements DI-COMP (avcl == nil) and DI-VAXX (avcl != nil).
type dictCodec struct {
	scheme  Scheme
	node    int
	cfg     DictConfig
	idxBits int
	avcl    *approx.AVCL
	budget  quality.Budget

	// Encoder side. DI-COMP uses the binary CAM; DI-VAXX the TCAM. Both
	// keep per-slot side storage for the per-destination index vectors.
	cam     *tcam.CAM
	tc      *tcam.TCAM
	encDest [][]destRef // [slot][dest]

	// Decoder side.
	dec     []decEntry
	cands   *candidateTable
	pending []pendingInstall

	// GC bookkeeping: consecutive cold epochs per decoder slot and the
	// promotions the cold-entry guard blocked since the last epoch.
	idle            []uint32
	blockedPromotes uint64

	// gen is the dictionary state version: it advances on every table
	// mutation (installs, updates, invalidations, evictions, GC
	// reclaims, aging epochs) and tags snapshots so replication can
	// tell stale state from fresh (see DictSnapshotter).
	gen uint64

	// scratch backs CompressScratch (see ScratchEncoder).
	scratch encodeScratch

	stats          OpStats
	decodeMismatch uint64
}

// NewDIComp returns the exact dictionary codec for the given node.
func NewDIComp(node int, cfg DictConfig) (Codec, error) {
	return newDict(DIComp, node, cfg, nil, nil)
}

// NewDIVaxx returns the DI-VAXX codec with the given error threshold (%).
func NewDIVaxx(node int, cfg DictConfig, thresholdPct int) (Codec, error) {
	a, err := approx.New(thresholdPct)
	if err != nil {
		return nil, err
	}
	b, err := quality.NewPerWord(thresholdPct)
	if err != nil {
		return nil, err
	}
	return newDict(DIVaxx, node, cfg, a, b)
}

// NewDIVaxxWindowed returns DI-VAXX with the §7 windowed cumulative
// error budget: TCAM don't-care families are computed at boost times the
// threshold, and the budget keeps the mean window error at the nominal
// per-word level.
func NewDIVaxxWindowed(node int, cfg DictConfig, thresholdPct, window int, boost float64) (Codec, error) {
	boosted := int(float64(thresholdPct) * boost)
	if boosted > 100 {
		boosted = 100
	}
	a, err := approx.New(boosted)
	if err != nil {
		return nil, err
	}
	b, err := quality.NewWindow(thresholdPct, window, boost)
	if err != nil {
		return nil, err
	}
	return newDict(DIVaxx, node, cfg, a, b)
}

func newDict(s Scheme, node int, cfg DictConfig, a *approx.AVCL, b quality.Budget) (Codec, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if node < 0 || node >= cfg.Nodes {
		return nil, fmt.Errorf("compress: node %d outside [0,%d)", node, cfg.Nodes)
	}
	d := &dictCodec{
		scheme:  s,
		node:    node,
		cfg:     cfg,
		idxBits: indexBits(cfg.Entries),
		avcl:    a,
		budget:  b,
		encDest: make([][]destRef, cfg.Entries),
		dec:     make([]decEntry, cfg.Entries),
		cands:   newCandidateTable(cfg.CandidateCap),
		idle:    make([]uint32, cfg.Entries),
	}
	for i := range d.encDest {
		d.encDest[i] = make([]destRef, cfg.Nodes)
	}
	for i := range d.dec {
		d.dec[i].validBits = make([]bool, cfg.Nodes)
	}
	if a != nil {
		d.tc = tcam.NewTCAM(cfg.Entries)
	} else {
		d.cam = tcam.NewCAM(cfg.Entries)
	}
	return d, nil
}

func (d *dictCodec) Scheme() Scheme { return d.scheme }

// --- Encoder ---------------------------------------------------------------

func (d *dictCodec) Compress(dst int, blk *value.Block) *Encoded {
	return d.compress(dst, blk, &Encoded{}, &bitWriter{}, nil)
}

// CompressScratch implements ScratchEncoder: identical encoding into
// codec-owned buffers valid until the next CompressScratch call.
func (d *dictCodec) CompressScratch(dst int, blk *value.Block) *Encoded {
	d.scratch.w.Reset()
	enc := d.compress(dst, blk, &d.scratch.enc, &d.scratch.w, d.scratch.words[:0])
	d.scratch.words = enc.Words // keep the grown capacity for reuse
	return enc
}

func (d *dictCodec) compress(dst int, blk *value.Block, enc *Encoded, w *bitWriter, words []WordEnc) *Encoded {
	// Worst case every word goes raw: 1 flag bit + 32 data bits.
	w.grow(33 * len(blk.Words))
	if cap(words) >= len(blk.Words) {
		words = words[:len(blk.Words)]
	} else {
		words = make([]WordEnc, len(blk.Words))
	}
	d.stats.BlocksIn++
	d.stats.WordsIn += uint64(len(blk.Words))
	d.stats.BitsIn += uint64(32 * len(blk.Words))

	for i, word := range blk.Words {
		d.stats.EncodeOps++
		we := d.encodeWord(dst, word, blk)
		if d.budget != nil {
			d.budget.Advance()
		}
		if we.Kind == RawWord {
			w.WriteBits(0, 1)
			w.WriteBits(word, 32)
		} else {
			w.WriteBits(1, 1)
			w.WriteBits(uint32(we.encIdx), d.idxBits)
		}
		switch we.Kind {
		case RawWord:
			d.stats.WordsRaw++
		case ExactWord:
			d.stats.WordsExact++
		case ApproxWord:
			d.stats.WordsApprox++
			d.stats.SumRelError += value.RelError(word, we.Decoded, blk.DType)
		}
		words[i] = we.WordEnc
	}

	d.stats.BitsOut += uint64(w.Len())
	*enc = Encoded{
		Scheme:       d.scheme,
		NumWords:     len(blk.Words),
		DType:        blk.DType,
		Approximable: blk.Approximable,
		Bits:         w.Len(),
		Payload:      w.Bytes(),
		Words:        words,
	}
	return enc
}

type dictWordEnc struct {
	WordEnc
	encIdx int // decoder-PMT index transmitted on a hit
}

func (d *dictCodec) encodeWord(dst int, word value.Word, blk *value.Block) dictWordEnc {
	raw := dictWordEnc{WordEnc: WordEnc{Kind: RawWord, Bits: 1 + 32, Orig: word, Decoded: word}}
	if d.avcl == nil {
		// Exact DI-COMP: one CAM search per word.
		slot, ok := d.cam.Lookup(word)
		if !ok {
			return raw
		}
		ref := d.encDest[slot][dst]
		if !ref.valid || ref.orig != word {
			return raw
		}
		return dictWordEnc{
			WordEnc: WordEnc{Kind: ExactWord, Bits: 1 + d.idxBits, Orig: word, Decoded: word},
			encIdx:  ref.idx,
		}
	}

	// DI-VAXX: one TCAM search per word against approximate patterns.
	slot, ok := d.tc.Search(word)
	if !ok {
		return raw
	}
	ref := d.encDest[slot][dst]
	if !ref.valid {
		return raw
	}
	approximable := blk.Approximable
	if blk.DType == value.Float32 && value.IsSpecialFloat(word) {
		approximable = false // float exponent detection bypass
	}
	if ref.orig == word {
		return dictWordEnc{
			WordEnc: WordEnc{Kind: ExactWord, Bits: 1 + d.idxBits, Orig: word, Decoded: word},
			encIdx:  ref.idx,
		}
	}
	if !approximable {
		// A TCAM family match does not guarantee the recovered pattern
		// equals the transmitted word (§4.2.1), so precise traffic needs
		// the original-pattern comparison to succeed.
		return raw
	}
	// Online error control before committing the approximation (the
	// windowed budget is the §7 extension).
	if d.budget == nil || !d.budget.Allow(value.RelError(word, ref.orig, blk.DType)) {
		return raw
	}
	return dictWordEnc{
		WordEnc: WordEnc{Kind: ApproxWord, Bits: 1 + d.idxBits, Orig: word, Decoded: ref.orig},
		encIdx:  ref.idx,
	}
}

// --- Decoder ---------------------------------------------------------------

func (d *dictCodec) Decompress(src int, enc *Encoded) (*value.Block, []Notification) {
	r := newBitReader(enc.Payload)
	blk := value.NewBlock(enc.NumWords, enc.DType, enc.Approximable)
	var out []Notification
	for i := range blk.Words {
		d.stats.DecodeOps++
		if r.ReadBits(1) == 1 {
			idx := int(r.ReadBits(d.idxBits))
			if idx < len(d.dec) && d.dec[idx].valid {
				blk.Words[i] = d.dec[idx].pattern
				d.dec[idx].freq++
			} else {
				d.decodeMismatch++
			}
			continue
		}
		word := r.ReadBits(32)
		blk.Words[i] = word
		out = append(out, d.observeRawWord(src, word, enc.DType)...)
	}
	d.stats.BlocksDecoded++
	before := d.stats.WordsDecoded
	d.stats.WordsDecoded += uint64(enc.NumWords)
	period := uint64(d.cfg.AgingPeriod)
	if before/period != d.stats.WordsDecoded/period {
		out = append(out, d.runEpoch()...)
	}
	d.stats.NotificationsSent += uint64(len(out))
	return blk, out
}

// ageFrequencies halves every decoder-PMT frequency counter so the
// eviction guard in promote can eventually displace patterns whose phase
// has passed.
func (d *dictCodec) ageFrequencies() {
	for slot := range d.dec {
		d.dec[slot].freq /= 2
	}
}

// runEpoch is one decoder aging epoch: the frequency halving that was
// always there, plus the configured GC policies. It returns the
// invalidate fanout any reclaims produced; the caller folds those into
// the Decompress notification batch.
func (d *dictCodec) runEpoch() []Notification {
	d.stats.GCEpochs++
	d.gen++
	d.ageFrequencies()
	var out []Notification

	// Cold-pattern age-out: entries whose halved frequency sits at zero
	// accumulate idle epochs; at the configured bound they are reclaimed
	// through the invalidate/ack handshake.
	for slot := range d.dec {
		e := &d.dec[slot]
		if !e.valid || e.locked || e.freq > 0 {
			d.idle[slot] = 0
			continue
		}
		d.idle[slot]++
		if d.cfg.GCAgeOutEpochs > 0 && d.idle[slot] >= uint32(d.cfg.GCAgeOutEpochs) {
			out = append(out, d.reclaim(slot, false)...)
		}
	}

	// Capacity-pressure sweep: when the cold-entry guard blocked enough
	// promotions this epoch, free up to GCPressureSweep of the coldest
	// unlocked entries so new candidates have somewhere to land.
	if d.cfg.GCPressureSweep > 0 && d.blockedPromotes >= uint64(d.cfg.GCPressureMin) {
		for n := 0; n < d.cfg.GCPressureSweep; n++ {
			victim, best, found := 0, ^uint64(0), false
			for slot := range d.dec {
				e := &d.dec[slot]
				if e.valid && !e.locked && e.freq < best {
					victim, best, found = slot, e.freq, true
				}
			}
			if !found {
				break
			}
			out = append(out, d.reclaim(victim, true)...)
		}
	}
	d.blockedPromotes = 0
	return out
}

// reclaim frees decoder slot through the same invalidate/ack handshake a
// promotion eviction uses, so encoder PMTs never reference a freed row.
// Slots nobody mapped are freed immediately; otherwise the slot locks
// behind a gc pendingInstall until every encoder acks. When the pending
// table is full the reclaim is deferred to a later epoch.
func (d *dictCodec) reclaim(slot int, pressure bool) []Notification {
	e := &d.dec[slot]
	if !e.valid || e.locked {
		return nil
	}
	if len(d.pending) >= d.cfg.PendingCap {
		d.stats.GCBlockedReclaims++
		return nil
	}
	if pressure {
		d.stats.GCPressureEvictions++
	} else {
		d.stats.GCAgeEvictions++
	}
	d.idle[slot] = 0
	awaiting := make(map[int]bool)
	var out []Notification
	for encNode, set := range e.validBits {
		if set {
			awaiting[encNode] = true
			out = append(out, Notification{
				From: d.node, To: encNode, Kind: NotifInvalidate,
				Pattern: e.pattern, DType: e.dtype, Index: slot,
			})
		}
	}
	d.gen++
	if len(awaiting) == 0 {
		e.valid = false
		e.freq = 0
		return nil
	}
	e.locked = true
	d.pending = append(d.pending, pendingInstall{slot: slot, awaiting: awaiting, gc: true})
	return out
}

// observeRawWord runs the decoder-side recurrent pattern detection on one
// uncompressed word from src and returns any protocol messages to send.
func (d *dictCodec) observeRawWord(src int, word value.Word, dt value.DataType) []Notification {
	// Already tracked? Extend the mapping to this encoder if needed.
	for slot := range d.dec {
		e := &d.dec[slot]
		if e.valid && !e.locked && e.pattern == word && e.dtype == dt {
			e.freq++
			if !e.validBits[src] {
				e.validBits[src] = true
				return []Notification{{
					From: d.node, To: src, Kind: NotifUpdate,
					Pattern: word, DType: dt, Index: slot,
				}}
			}
			return nil
		}
	}
	count := d.cands.bump(word, dt)
	if count < d.cfg.PromoteThreshold {
		return nil
	}
	return d.promote(src, word, dt, count)
}

// promote installs a newly frequent pattern, evicting a victim with the
// invalidate/ack handshake when the PMT is full. The candidate only
// displaces an entry that is colder than the candidate itself, which
// keeps genuinely hot patterns resident and bounds notification churn.
func (d *dictCodec) promote(src int, word value.Word, dt value.DataType, count int) []Notification {
	// Free slot?
	for slot := range d.dec {
		if !d.dec[slot].valid && !d.dec[slot].locked {
			d.cands.drop(word, dt)
			return d.install(slot, src, word, dt)
		}
	}
	if len(d.pending) >= d.cfg.PendingCap {
		return nil // too many evictions in flight; retry on a later sighting
	}
	// Victim: coldest unlocked entry.
	victim, best, found := 0, ^uint64(0), false
	for slot := range d.dec {
		e := &d.dec[slot]
		if e.valid && !e.locked && e.freq < best {
			victim, best, found = slot, e.freq, true
		}
	}
	if !found {
		return nil
	}
	if best >= uint64(count) {
		d.blockedPromotes++
		return nil // the candidate is not hotter than the coldest entry yet
	}
	d.cands.drop(word, dt)
	e := &d.dec[victim]
	awaiting := make(map[int]bool)
	var out []Notification
	for encNode, set := range e.validBits {
		if set {
			awaiting[encNode] = true
			out = append(out, Notification{
				From: d.node, To: encNode, Kind: NotifInvalidate,
				Pattern: e.pattern, DType: e.dtype, Index: victim,
			})
		}
	}
	if len(awaiting) == 0 {
		// No encoder ever mapped it; reuse immediately.
		e.valid = false
		return d.install(victim, src, word, dt)
	}
	e.locked = true
	d.gen++
	d.pending = append(d.pending, pendingInstall{
		slot: victim, pattern: word, dtype: dt, requester: src, awaiting: awaiting,
	})
	d.stats.NotificationsSent += uint64(len(out))
	return out
}

func (d *dictCodec) install(slot, src int, word value.Word, dt value.DataType) []Notification {
	e := &d.dec[slot]
	e.valid = true
	e.locked = false
	e.pattern = word
	e.dtype = dt
	e.freq = 1
	for i := range e.validBits {
		e.validBits[i] = false
	}
	e.validBits[src] = true
	d.idle[slot] = 0
	d.gen++
	d.stats.TableWrites++
	return []Notification{{
		From: d.node, To: src, Kind: NotifUpdate,
		Pattern: word, DType: dt, Index: slot,
	}}
}

// --- Protocol --------------------------------------------------------------

func (d *dictCodec) HandleNotification(n Notification) []Notification {
	d.stats.NotificationsRecv++
	switch n.Kind {
	case NotifUpdate:
		d.handleUpdate(n)
		return nil
	case NotifInvalidate:
		d.handleInvalidate(n)
		ack := Notification{From: d.node, To: n.From, Kind: NotifInvalidateAck, Index: n.Index, Pattern: n.Pattern}
		d.stats.NotificationsSent++
		return []Notification{ack}
	case NotifInvalidateAck:
		return d.handleAck(n)
	}
	return nil
}

// handleUpdate installs a (pattern -> decoder index) mapping for the
// decoder at n.From into this node's encoder PMT.
func (d *dictCodec) handleUpdate(n Notification) {
	var slot int
	if d.avcl == nil {
		s, _, evicted := d.cam.Insert(n.Pattern)
		if evicted {
			d.clearSlot(s)
		}
		slot = s
	} else {
		// APCL: compute the approximate pattern (don't-care family) the
		// TCAM will store for this reference pattern.
		mask, ok := d.avcl.MaskWord(n.Pattern, n.DType)
		if !ok {
			mask = 0
		}
		ent := tcam.TEntry{Value: n.Pattern &^ mask, Mask: mask}
		s, _, evicted := d.tc.Insert(ent)
		if evicted {
			d.clearSlot(s)
		}
		slot = s
	}
	d.encDest[slot][n.From] = destRef{valid: true, idx: n.Index, orig: n.Pattern}
	d.gen++
	d.stats.TableWrites++
}

func (d *dictCodec) clearSlot(slot int) {
	for i := range d.encDest[slot] {
		d.encDest[slot][i] = destRef{}
	}
}

// handleInvalidate drops this encoder's mapping for decoder n.From's
// index n.Index. Tolerates the mapping being already gone (the encoder may
// have evicted the entry locally).
func (d *dictCodec) handleInvalidate(n Notification) {
	for slot := range d.encDest {
		ref := &d.encDest[slot][n.From]
		if ref.valid && ref.idx == n.Index {
			*ref = destRef{}
			d.gen++
			// Invalidate the whole encoder entry if no destination uses it.
			inUse := false
			for i := range d.encDest[slot] {
				if d.encDest[slot][i].valid {
					inUse = true
					break
				}
			}
			if !inUse {
				if d.avcl == nil {
					d.cam.InvalidateIndex(slot)
				} else {
					d.tc.InvalidateIndex(slot)
				}
			}
			return
		}
	}
}

// handleAck completes a pending eviction once every encoder confirmed.
func (d *dictCodec) handleAck(n Notification) []Notification {
	for i := range d.pending {
		p := &d.pending[i]
		if p.slot != n.Index {
			continue
		}
		delete(p.awaiting, n.From)
		if len(p.awaiting) > 0 {
			return nil
		}
		slot, src, pat, dt, gc := p.slot, p.requester, p.pattern, p.dtype, p.gc
		d.pending = append(d.pending[:i], d.pending[i+1:]...)
		d.dec[slot].valid = false
		d.dec[slot].locked = false
		if gc {
			// GC reclaim: the slot is simply freed, nothing installs.
			d.dec[slot].freq = 0
			d.gen++
			return nil
		}
		out := d.install(slot, src, pat, dt)
		d.stats.NotificationsSent += uint64(len(out))
		return out
	}
	return nil
}

// DecodeMismatches reports compressed words that referenced an invalid
// decoder entry — zero under the in-order delivery the NI guarantees.
func (d *dictCodec) DecodeMismatches() uint64 { return d.decodeMismatch }

// DictMapping is one live encoder-PMT mapping toward a destination: the
// decoder-PMT index that destination assigned and the original pattern
// recorded alongside it (the "idx / op" pair of Fig. 8). Exported for
// the oracle's PMT-synchronization audit.
type DictMapping struct {
	Index   int
	Pattern value.Word
}

// DictIntrospector exposes the dictionary tables for invariant checks;
// internal/oracle audits encoder/decoder synchronization through it.
// The views are read-only snapshots and must not be used on the hot
// path.
type DictIntrospector interface {
	// EncoderMappings lists this codec's valid encoder-PMT mappings
	// toward destination node dst.
	EncoderMappings(dst int) []DictMapping
	// DecoderEntry returns decoder-PMT row idx.
	DecoderEntry(idx int) (pattern value.Word, dt value.DataType, valid bool)
	// DecoderMapsEncoder reports whether decoder row idx carries the
	// valid bit for encoder node encNode.
	DecoderMapsEncoder(idx, encNode int) bool
}

// EncoderMappings implements DictIntrospector.
func (d *dictCodec) EncoderMappings(dst int) []DictMapping {
	if dst < 0 || dst >= d.cfg.Nodes {
		return nil
	}
	var out []DictMapping
	for slot := range d.encDest {
		if ref := d.encDest[slot][dst]; ref.valid {
			out = append(out, DictMapping{Index: ref.idx, Pattern: ref.orig})
		}
	}
	return out
}

// DecoderEntry implements DictIntrospector.
func (d *dictCodec) DecoderEntry(idx int) (value.Word, value.DataType, bool) {
	if idx < 0 || idx >= len(d.dec) || !d.dec[idx].valid {
		return 0, 0, false
	}
	e := &d.dec[idx]
	return e.pattern, e.dtype, true
}

// DecoderMapsEncoder implements DictIntrospector.
func (d *dictCodec) DecoderMapsEncoder(idx, encNode int) bool {
	if idx < 0 || idx >= len(d.dec) || encNode < 0 || encNode >= d.cfg.Nodes {
		return false
	}
	e := &d.dec[idx]
	return e.valid && e.validBits[encNode]
}

func (d *dictCodec) Stats() OpStats {
	s := d.stats
	if d.cam != nil {
		cs := d.cam.Stats()
		s.CamSearches += cs.Searches
	}
	if d.tc != nil {
		ts := d.tc.Stats()
		s.TcamSearches += ts.Searches
	}
	if d.avcl != nil {
		as := d.avcl.Stats()
		s.AVCLMaskHits += as.MaskHits
		s.AVCLClips += as.Clips
		s.AVCLBypasses += as.Bypasses
	}
	return s
}
