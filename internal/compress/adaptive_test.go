package compress

import (
	"testing"

	"approxnoc/internal/value"
)

func adaptiveOverFPC(t *testing.T, cfg AdaptiveConfig) *Adaptive {
	t.Helper()
	a, err := NewAdaptive(NewFPComp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(nil, DefaultAdaptiveConfig()); err == nil {
		t.Fatal("nil codec accepted")
	}
	bad := DefaultAdaptiveConfig()
	bad.WindowBlocks = 0
	if _, err := NewAdaptive(NewFPComp(), bad); err == nil {
		t.Fatal("zero window accepted")
	}
	bad = DefaultAdaptiveConfig()
	bad.MinRatio = 0
	if _, err := NewAdaptive(NewFPComp(), bad); err == nil {
		t.Fatal("zero ratio accepted")
	}
	bad = DefaultAdaptiveConfig()
	bad.ProbeEvery = 0
	if _, err := NewAdaptive(NewFPComp(), bad); err == nil {
		t.Fatal("zero probe period accepted")
	}
}

func incompressibleBlock(r int) *value.Block {
	words := make([]uint32, 16)
	x := uint32(r)*2654435761 + 1
	for i := range words {
		x = x*1664525 + 1013904223
		words[i] = x | 0x40000000 // avoid accidental pattern matches
	}
	return &value.Block{Words: words, DType: value.Int32}
}

func compressibleBlock() *value.Block {
	return value.BlockFromI32(make([]int32, 16), false)
}

func TestAdaptiveDisablesOnIncompressibleTraffic(t *testing.T) {
	cfg := AdaptiveConfig{WindowBlocks: 8, MinRatio: 1.05, ProbeEvery: 100}
	a := adaptiveOverFPC(t, cfg)
	if !a.On() {
		t.Fatal("controller starts disabled")
	}
	for i := 0; i < 8; i++ {
		a.Compress(1, incompressibleBlock(i))
	}
	if a.On() {
		t.Fatal("controller stayed on through an incompressible epoch")
	}
	// Bypassed packets are emitted baseline-form and still decode.
	blk := incompressibleBlock(99)
	enc := a.Compress(1, blk)
	if enc.Scheme != Baseline {
		t.Fatalf("bypassed packet scheme %v", enc.Scheme)
	}
	dec, _ := a.Decompress(0, enc)
	if !dec.Equal(blk) {
		t.Fatal("bypassed block corrupted")
	}
	if a.BypassedBlocks() == 0 {
		t.Fatal("bypass counter idle")
	}
}

func TestAdaptiveStaysOnForCompressibleTraffic(t *testing.T) {
	cfg := AdaptiveConfig{WindowBlocks: 8, MinRatio: 1.05, ProbeEvery: 2}
	a := adaptiveOverFPC(t, cfg)
	for i := 0; i < 64; i++ {
		enc := a.Compress(1, compressibleBlock())
		if enc.Scheme != FPComp {
			t.Fatalf("block %d bypassed on compressible traffic", i)
		}
	}
	if !a.On() {
		t.Fatal("controller turned off on compressible traffic")
	}
}

func TestAdaptiveProbesAndRecovers(t *testing.T) {
	cfg := AdaptiveConfig{WindowBlocks: 4, MinRatio: 1.05, ProbeEvery: 2}
	a := adaptiveOverFPC(t, cfg)
	// Phase 1: incompressible -> off.
	for i := 0; i < 4; i++ {
		a.Compress(1, incompressibleBlock(i))
	}
	if a.On() {
		t.Fatal("did not disable")
	}
	// Two off-epochs pass; the controller probes again.
	for i := 0; i < 8; i++ {
		a.Compress(1, incompressibleBlock(100+i))
	}
	if !a.On() {
		t.Fatal("probe never happened")
	}
	// Phase 2 is compressible: the probe epoch succeeds and stays on.
	for i := 0; i < 8; i++ {
		a.Compress(1, compressibleBlock())
	}
	if !a.On() {
		t.Fatal("controller did not recover on a compressible phase")
	}
}

func TestAdaptiveSchemeAndStats(t *testing.T) {
	a := adaptiveOverFPC(t, DefaultAdaptiveConfig())
	if a.Scheme() != FPComp {
		t.Fatalf("scheme %v", a.Scheme())
	}
	a.Compress(1, compressibleBlock())
	if a.Stats().BlocksIn != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestAdaptiveOverDictionary(t *testing.T) {
	cfg := DefaultDictConfig(2)
	inner, err := NewDIVaxx(0, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptive(inner, AdaptiveConfig{WindowBlocks: 16, MinRatio: 1.02, ProbeEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	peer, _ := NewDIVaxx(1, cfg, 10)
	// Dictionary protocol still flows through the wrapper.
	blk := value.BlockFromI32([]int32{42, 42, 42, 42}, false)
	for i := 0; i < 6; i++ {
		enc := a.Compress(1, blk)
		out, notifs := peer.Decompress(0, enc)
		if !out.Equal(blk) {
			t.Fatal("data corrupted through adaptive dictionary")
		}
		for _, n := range notifs {
			a.HandleNotification(n)
		}
	}
	if a.Stats().WordsExact == 0 {
		t.Fatal("dictionary never learned through the wrapper")
	}
}
