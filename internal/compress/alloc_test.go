package compress

import (
	"testing"

	"approxnoc/internal/value"
	"approxnoc/internal/workload"
)

// Steady-state allocation gates for the scratch encode path: after a
// warmup pass sizes every reusable buffer, CompressScratch must not
// allocate at all. check.sh runs these without -race (the race runtime
// itself allocates).

func allocBlocks(t testing.TB) []*value.Block {
	t.Helper()
	m, err := workload.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	src := m.NewSource(3, 0.75)
	blocks := make([]*value.Block, 64)
	for i := range blocks {
		blocks[i] = src.NextBlock()
	}
	return blocks
}

func gateZeroAllocs(t *testing.T, name string, se ScratchEncoder, blocks []*value.Block) {
	t.Helper()
	// Warmup: let every scratch buffer reach its steady-state capacity.
	for _, blk := range blocks {
		se.CompressScratch(1, blk)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		se.CompressScratch(1, blocks[i%len(blocks)])
		i++
	})
	if allocs != 0 {
		t.Errorf("%s: CompressScratch allocates %.1f objects/block in steady state, want 0", name, allocs)
	}
}

func TestScratchZeroAllocs(t *testing.T) {
	blocks := allocBlocks(t)
	for name, pair := range scratchCodecs(t) {
		se, ok := pair[0].(ScratchEncoder)
		if !ok {
			t.Fatalf("%s does not implement ScratchEncoder", name)
		}
		t.Run(name, func(t *testing.T) { gateZeroAllocs(t, name, se, blocks) })
	}
}

// TestScratchZeroAllocsDict gates the dictionary schemes with their PMTs
// warmed by real traffic, so the encode path exercises CAM/TCAM hits and
// the per-destination index vectors, not just the raw fallback.
func TestScratchZeroAllocsDict(t *testing.T) {
	blocks := allocBlocks(t)
	for _, scheme := range []Scheme{DIComp, DIVaxx} {
		t.Run(scheme.String(), func(t *testing.T) {
			const nodes = 2
			factory, err := FactoryFor(scheme, nodes, 10)
			if err != nil {
				t.Fatal(err)
			}
			f := NewFabric(nodes, factory)
			// Warm the decoder candidate tables and encoder PMTs.
			for i := 0; i < 4; i++ {
				for _, blk := range blocks {
					f.Transfer(0, 1, blk)
				}
			}
			se, ok := f.Codec(0).(ScratchEncoder)
			if !ok {
				t.Fatalf("%v does not implement ScratchEncoder", scheme)
			}
			gateZeroAllocs(t, scheme.String(), se, blocks)
		})
	}
}

// TestFabricTransferSteadyAllocs bounds the whole offline transfer loop:
// the encode side must contribute nothing, leaving only the decode-side
// block construction (and occasional dictionary protocol churn).
func TestFabricTransferSteadyAllocs(t *testing.T) {
	blocks := allocBlocks(t)
	factory, err := FactoryFor(FPVaxx, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFabric(2, factory)
	for _, blk := range blocks {
		f.Transfer(0, 1, blk)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		f.Transfer(0, 1, blocks[i%len(blocks)])
		i++
	})
	// Decompress builds one fresh *value.Block per transfer: the header,
	// its Words array, and the decode staging. Everything beyond that
	// small constant would mean the encode path regressed.
	if allocs > 4 {
		t.Errorf("Transfer allocates %.1f objects/block in steady state, want <= 4 (decode side only)", allocs)
	}
}
