package compress

import "approxnoc/internal/sim"

// testRand returns a deterministic generator for table-free randomized
// tests in this package.
func testRand() *sim.Rand { return sim.NewRand(0xC0FFEE) }
