// White-box edge cases for the GC reclaim machinery: interactions with
// in-flight promotion evictions (locked slots), the gc-flavored ack
// completion, and reclaims racing encoder-local state.
package compress

import (
	"testing"

	"approxnoc/internal/value"
)

func newGCDict(t *testing.T, cfg DictConfig) *dictCodec {
	t.Helper()
	c, err := NewDIComp(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c.(*dictCodec)
}

// seedEntry hand-installs a decoder row mapped by encoder enc.
func seedEntry(d *dictCodec, slot int, pattern value.Word, enc int) {
	e := &d.dec[slot]
	e.valid = true
	e.locked = false
	e.pattern = pattern
	e.dtype = value.Int32
	e.freq = 0
	for i := range e.validBits {
		e.validBits[i] = false
	}
	if enc >= 0 {
		e.validBits[enc] = true
	}
}

// TestRunEpochSkipsLockedSlots pins that a slot locked behind an
// in-flight promotion eviction is invisible to both GC policies — its
// idle counter does not advance and no reclaim touches it.
func TestRunEpochSkipsLockedSlots(t *testing.T) {
	cfg := DictConfig{Nodes: 4, Entries: 4, AgingPeriod: 64, GCAgeOutEpochs: 1, GCPressureSweep: 4, GCPressureMin: 1}
	d := newGCDict(t, cfg)
	seedEntry(d, 0, 0xAAAA, 1)
	d.dec[0].locked = true // promotion eviction in flight
	d.pending = append(d.pending, pendingInstall{slot: 0, pattern: 0xBBBB, requester: 1, awaiting: map[int]bool{1: true}})
	d.blockedPromotes = 10 // pressure sweep armed

	for epoch := 0; epoch < 3; epoch++ {
		d.runEpoch()
	}
	if !d.dec[0].valid || !d.dec[0].locked {
		t.Fatal("GC touched a locked slot")
	}
	if d.idle[0] != 0 {
		t.Fatalf("locked slot accumulated %d idle epochs", d.idle[0])
	}
	if d.stats.GCAgeEvictions != 0 || d.stats.GCPressureEvictions != 0 {
		t.Fatalf("GC reclaimed around the lock: %+v", d.stats)
	}
	// The in-flight eviction still completes normally afterwards.
	d.handleAck(Notification{From: 1, Kind: NotifInvalidateAck, Index: 0})
	if !d.dec[0].valid || d.dec[0].pattern != 0xBBBB {
		t.Fatal("pending install did not survive the GC epochs")
	}
}

// TestGCAckFreesWithoutInstall pins the gc-flavored handshake: when the
// last ack for a GC reclaim arrives, the slot is freed — not reused for
// an install — and its frequency is cleared.
func TestGCAckFreesWithoutInstall(t *testing.T) {
	cfg := DictConfig{Nodes: 4, Entries: 2, AgingPeriod: 64, GCAgeOutEpochs: 1}
	d := newGCDict(t, cfg)
	seedEntry(d, 0, 0xCCCC, 1)
	d.dec[0].validBits[2] = true // two encoders map it

	notifs := d.runEpoch()
	if len(notifs) != 2 {
		t.Fatalf("reclaim fanned out %d invalidates, want 2", len(notifs))
	}
	if !d.dec[0].locked || len(d.pending) != 1 || !d.pending[0].gc {
		t.Fatal("reclaim did not lock the slot behind a gc pending")
	}
	gen := d.gen
	d.handleAck(Notification{From: 1, Kind: NotifInvalidateAck, Index: 0})
	if !d.dec[0].locked {
		t.Fatal("slot unlocked before every encoder acked")
	}
	d.handleAck(Notification{From: 2, Kind: NotifInvalidateAck, Index: 0})
	if d.dec[0].valid || d.dec[0].locked || d.dec[0].freq != 0 {
		t.Fatalf("gc ack completion left slot %+v", d.dec[0])
	}
	if len(d.pending) != 0 {
		t.Fatal("gc pending not retired")
	}
	if d.gen <= gen {
		t.Fatal("gc completion did not advance the generation")
	}
}

// TestGCUnmappedEntryFreesImmediately pins the fast path: an entry no
// encoder ever mapped needs no handshake and frees inside the epoch.
func TestGCUnmappedEntryFreesImmediately(t *testing.T) {
	cfg := DictConfig{Nodes: 4, Entries: 2, AgingPeriod: 64, GCAgeOutEpochs: 1}
	d := newGCDict(t, cfg)
	seedEntry(d, 1, 0xDDDD, -1) // no valid bits
	if notifs := d.runEpoch(); len(notifs) != 0 {
		t.Fatalf("unmapped reclaim produced %d notifications", len(notifs))
	}
	if d.dec[1].valid {
		t.Fatal("unmapped cold entry survived its age-out epoch")
	}
	if d.stats.GCAgeEvictions != 1 {
		t.Fatalf("age evictions %d, want 1", d.stats.GCAgeEvictions)
	}
}

// TestGCReclaimRacingEncoderEviction pins the race where the encoder
// already dropped its mapping locally (its own CAM eviction) when the
// GC invalidate arrives: the encoder still acks, the decoder still
// frees, and nothing desyncs.
func TestGCReclaimRacingEncoderEviction(t *testing.T) {
	cfg := DictConfig{Nodes: 2, Entries: 2, AgingPeriod: 64, GCAgeOutEpochs: 1}
	dec := newGCDict(t, cfg)
	encC, err := NewDIComp(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := encC.(*dictCodec)

	seedEntry(dec, 0, 0xEEEE, 1)
	// The encoder never learned the mapping (or already evicted it).
	notifs := dec.runEpoch()
	if len(notifs) != 1 {
		t.Fatalf("want one invalidate, got %d", len(notifs))
	}
	acks := enc.HandleNotification(notifs[0])
	if len(acks) != 1 || acks[0].Kind != NotifInvalidateAck {
		t.Fatalf("encoder did not ack a stale invalidate: %+v", acks)
	}
	dec.HandleNotification(acks[0])
	if dec.dec[0].valid || dec.dec[0].locked {
		t.Fatal("decoder slot not freed after stale-mapping ack")
	}
}

// TestGCBlockedReclaimCounts pins the pending-cap deferral counter at
// the unit level: a full pending table defers the reclaim, counts it,
// and leaves the entry intact for a later epoch.
func TestGCBlockedReclaimCounts(t *testing.T) {
	cfg := DictConfig{Nodes: 4, Entries: 4, AgingPeriod: 64, GCAgeOutEpochs: 1, PendingCap: 1}
	d := newGCDict(t, cfg)
	seedEntry(d, 0, 0xF000, 1)
	seedEntry(d, 1, 0xF001, 1)
	notifs := d.runEpoch()
	if len(notifs) != 1 {
		t.Fatalf("want one reclaim handshake under cap 1, got %d notifications", len(notifs))
	}
	if d.stats.GCBlockedReclaims != 1 {
		t.Fatalf("blocked reclaims %d, want 1", d.stats.GCBlockedReclaims)
	}
	if !d.dec[1].valid || d.dec[1].locked {
		t.Fatal("deferred entry must stay live until its own handshake")
	}
}
