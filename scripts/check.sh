#!/bin/sh
# check.sh — the verification gate: formatting, vet, build, and the test
# suite under the race detector (the internal/serve tests hammer the
# gateway with >100 concurrent clients, so -race is the part that
# actually guards the concurrency contracts). The race run uses -short:
# the heavyweight experiment-driver sweeps skip themselves there (they
# exceed the test timeout under the ~10x race slowdown) while the serve
# stress tests run in full. `go test ./...` covers the long tests.
set -eu
cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '>> go vet ./...'
go vet ./...

# Lint pass: staticcheck and govulncheck when they are on PATH (CI's
# lint job installs them; local environments without network fall back
# to vet above, which always runs).
if command -v staticcheck >/dev/null 2>&1; then
    echo '>> staticcheck ./...'
    staticcheck ./...
else
    echo '>> staticcheck not on PATH; skipping (CI lint job runs it)'
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo '>> govulncheck ./...'
    govulncheck ./...
else
    echo '>> govulncheck not on PATH; skipping (CI lint job runs it)'
fi

echo '>> go build ./...'
go build ./...

echo '>> go test -race -short ./...'
go test -race -short ./...

# The parallel experiment runner's determinism contract is guarded by an
# explicit race-detector pass: the short-mode subset above exercises the
# worker pool, and this run pins the mapJobs scheduling itself.
echo '>> go test -race (parallel runner)'
go test -race -run 'TestMapJobs|TestDriversParallelEquivalence' -short ./internal/experiments

# Cluster concurrency gate: the full internal/cluster suite under -race,
# without -short, so the failover replay (node killed mid-stream while
# clients retry across the ring) always runs instrumented — it is the
# test most likely to catch a pending-map or membership race.
echo '>> go test -race (cluster failover)'
go test -race ./internal/cluster

# Alloc-budget gate: the simulator hot path must stay allocation-free in
# a control-packet steady state (see DESIGN.md §9).
echo '>> alloc budget (TestStepZeroAllocs)'
go test -run 'TestStepZeroAllocs' ./internal/noc

# Wire-path alloc gates: a 10k-frame replay must reuse one read buffer
# per connection, and the end-to-end pipelined serve path must stay
# within its per-request allocation budget (see DESIGN.md §10). These
# run without -race on purpose — the -race pass above executes them as
# skips; heap accounting is only stable uninstrumented.
echo '>> alloc budget (serve wire path)'
go test -run 'TestReadFrameSteadyStateAllocs|TestWireReplaySteadyStateAllocs' ./internal/serve

# Codec encode alloc gates: the scratch encode path every fabric Transfer
# and serve shard worker rides must stay zero-alloc per block in steady
# state, and the AVCL per-word mask computation must never allocate (see
# DESIGN.md §14). Uninstrumented for the same heap-accounting reason.
echo '>> alloc budget (codec scratch encode)'
go test -run 'TestScratchZeroAllocs|TestScratchZeroAllocsDict|TestFabricTransferSteadyAllocs' ./internal/compress
go test -run 'TestAVCLZeroAllocs' ./internal/approx

echo '>> coverage (per package)'
coverprofile=${COVERPROFILE:-/tmp/approxnoc-cover.out}
go test -short -coverprofile "$coverprofile" ./...
go tool cover -func "$coverprofile" | tail -1
echo "coverage profile: $coverprofile"

# The observability layer is the instrumentation everything else leans
# on, and the QoS controller decides how much error every tenant eats
# under load — both carry an explicit coverage floor.
for pkg in internal/obs internal/qos; do
    echo ">> $pkg coverage floor (85%)"
    pkg_cover=$(go test -short -cover "./$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pkg_cover" ]; then
        echo "could not determine $pkg coverage" >&2
        exit 1
    fi
    echo "$pkg coverage: ${pkg_cover}%"
    if awk "BEGIN { exit !($pkg_cover < 85) }"; then
        echo "$pkg coverage ${pkg_cover}% is below the 85% floor" >&2
        exit 1
    fi
done

if [ "${FUZZ:-0}" = "1" ]; then
    echo '>> fuzz smoke'
    ./scripts/fuzz_smoke.sh
fi

if [ "${BENCH:-0}" = "1" ]; then
    # Kernel-only capture (the figure suite is minutes of wall clock):
    # proves the bench-json pipeline end to end and leaves a comparable
    # snapshot in /tmp for scripts/bench_compare.sh.
    echo '>> bench-json capture (kernel benchmarks)'
    SKIP_FIGURES=1 KERNEL_BENCHTIME=${KERNEL_BENCHTIME:-100x} \
        ./scripts/bench_json.sh /tmp/approxnoc-bench-check.json
fi

echo 'check: all green'
