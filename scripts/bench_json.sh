#!/bin/sh
# bench_json.sh — capture the benchmark suite as a committed JSON
# snapshot (BENCH_<pr>.json). Two passes feed cmd/benchjson:
#
#   1. kernel microbenchmarks (internal/noc, internal/obs, the
#      internal/serve gateway wire family, the internal/cluster
#      scaling grid, the internal/qos goodput-vs-quality grid, the
#      internal/tcam match-engine grid, and the internal/compress
#      codec hot-path grid) at the default 1s benchtime,
#      so ns/op and allocs/op are stable enough for the regression gate;
#   2. the figure suite (root package) at FIG_BENCHTIME (default 1x) —
#      these run whole experiments per iteration, so one iteration is
#      enough to capture the headline metrics they ReportMetric.
#
# Usage: scripts/bench_json.sh [output.json]
# Env:   FIG_BENCHTIME (default 1x), KERNEL_BENCHTIME (default 1s),
#        SKIP_FIGURES=1 to capture only the kernel pass (fast; used by
#        `make check BENCH=1`).
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_10.json}
fig_benchtime=${FIG_BENCHTIME:-1x}
kernel_benchtime=${KERNEL_BENCHTIME:-1s}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo ">> kernel benchmarks (benchtime $kernel_benchtime)"
go test -bench . -benchmem -benchtime "$kernel_benchtime" -run '^$' \
    ./internal/noc ./internal/obs ./internal/serve ./internal/cluster ./internal/qos \
    ./internal/tcam ./internal/compress | tee -a "$tmp"

if [ "${SKIP_FIGURES:-0}" != "1" ]; then
    echo ">> figure suite (benchtime $fig_benchtime)"
    go test -bench . -benchmem -benchtime "$fig_benchtime" -run '^$' . | tee -a "$tmp"
fi

go run ./cmd/benchjson < "$tmp" > "$out"
echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
