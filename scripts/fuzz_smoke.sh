#!/bin/sh
# fuzz_smoke.sh — run every native fuzz target for a short bounded time
# (FUZZTIME, default 30s each). The targets differential-test the
# optimized codecs against internal/oracle and hammer the wire protocol;
# a clean run means no divergence was found in this budget, not a proof.
# New crashers are written to the package's testdata/fuzz corpus by the
# Go tool itself — commit them with the fix.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME=${FUZZTIME:-30s}

run_target() {
    pkg=$1
    target=$2
    echo ">> fuzz $target ($pkg, $FUZZTIME)"
    go test -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
}

run_target ./internal/compress FuzzFPCRoundTrip
run_target ./internal/compress FuzzDictRoundTrip
run_target ./internal/compress FuzzBDIRoundTrip
run_target ./internal/compress FuzzDictSnapshot
run_target ./internal/approx FuzzVAXXErrorBound
run_target ./internal/tcam FuzzTCAMEngine
run_target ./internal/serve FuzzProtocolFrame

echo 'fuzz-smoke: all targets clean'
