#!/bin/sh
# bench_compare.sh — diff two BENCH_*.json captures and fail when the
# new one regresses ns/op beyond the tolerance or grows allocs/op.
#
# Usage: scripts/bench_compare.sh old.json new.json [tolerance]
#
# Tolerance is the allowed fractional ns/op slowdown (default 0.25 =
# 25%, loose enough to absorb machine noise on shared runners; tighten
# it when comparing captures taken back-to-back on the same host).
set -eu
cd "$(dirname "$0")/.."

if [ $# -lt 2 ]; then
    echo "usage: $0 old.json new.json [tolerance]" >&2
    exit 2
fi
go run ./cmd/benchjson -compare -old "$1" -new "$2" -tol "${3:-0.25}"
