#!/bin/sh
# bench_compare.sh — diff two BENCH_*.json captures and fail when the
# new one regresses ns/op beyond the tolerance or grows allocs/op.
#
# Usage: scripts/bench_compare.sh old.json new.json [tolerance] [allocslack]
#
# Tolerance is the allowed fractional ns/op slowdown (default 0.25 =
# 25%, loose enough to absorb machine noise on shared runners; tighten
# it when comparing captures taken back-to-back on the same host).
# Allocslack is an absolute allocs/op allowance on top of the baseline
# (default 0: any allocs/op growth fails; CI grants a small slack
# because scheduler jitter on shared runners can shift a warmup
# allocation into the measured window).
set -eu
cd "$(dirname "$0")/.."

if [ $# -lt 2 ]; then
    echo "usage: $0 old.json new.json [tolerance] [allocslack]" >&2
    exit 2
fi
go run ./cmd/benchjson -compare -old "$1" -new "$2" -tol "${3:-0.25}" -allocslack "${4:-0}"
