module approxnoc

go 1.22
