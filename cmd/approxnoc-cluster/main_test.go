package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// defaultOptions mirrors the flag defaults with a small workload.
func defaultOptions() options {
	return options{
		nodes: 2, schemeName: "DI-VAXX", threshold: 0, endpoints: 16,
		conns: 2, depth: 8, words: 16, records: 500,
	}
}

func TestRunLoadgenInProcess(t *testing.T) {
	var out bytes.Buffer
	o := defaultOptions()
	o.loadgen = true
	if err := run(o, &out, nil); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"loadgen", "2 nodes", "records/sec", "500 records", "n0=", "n1="} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunValidatesLoadgenKnobs(t *testing.T) {
	for _, breakIt := range []func(*options){
		func(o *options) { o.conns = 0 },
		func(o *options) { o.depth = -1 },
		func(o *options) { o.words = 0 },
		func(o *options) { o.records = 0 },
	} {
		o := defaultOptions()
		o.loadgen = true
		breakIt(&o)
		err := run(o, &bytes.Buffer{}, nil)
		if err == nil || !strings.Contains(err.Error(), ">= 1") {
			t.Fatalf("options %+v: got %v, want a >= 1 validation error", o, err)
		}
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	o := defaultOptions()
	o.schemeName = "nope"
	if err := run(o, &bytes.Buffer{}, nil); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestRunServerModeNeedsDebugAddr(t *testing.T) {
	o := defaultOptions()
	if err := run(o, &bytes.Buffer{}, nil); err == nil || !strings.Contains(err.Error(), "-debug-addr") {
		t.Fatalf("got %v, want a -debug-addr error", err)
	}
}

// TestRunServerModeServesMembershipAndMetrics boots the in-process
// cluster server mode and scrapes both endpoint families, then chains
// a second instance onto it via -seed in loadgen mode — the remote
// path end to end.
func TestRunServerModeServesMembershipAndMetrics(t *testing.T) {
	o := defaultOptions()
	o.debugAddr = "127.0.0.1:0"
	o.heartbeat = -1
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out bytes.Buffer
	go func() { errc <- run(o, &out, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited early: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/cluster/members")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Members []struct{ ID, Addr, State string }
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(body.Members) != 2 || body.Members[0].State != "healthy" {
		t.Fatalf("members %+v", body.Members)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), `cluster_nodes{state="healthy"} 2`) {
		t.Fatalf("metrics missing healthy gauge:\n%s", metrics.String())
	}

	// Second instance: seed-bootstrapped remote loadgen against the
	// first instance's nodes.
	lo := defaultOptions()
	lo.loadgen = true
	lo.seedURL = base
	lo.heartbeat = -1
	lo.records = 200
	var lout bytes.Buffer
	if err := run(lo, &lout, nil); err != nil {
		t.Fatalf("seeded loadgen: %v", err)
	}
	if !strings.Contains(lout.String(), "2 remote nodes") ||
		!strings.Contains(lout.String(), "200 records") {
		t.Fatalf("seeded loadgen output:\n%s", lout.String())
	}

	// Peers mode reaches the same nodes by address list.
	po := defaultOptions()
	po.loadgen = true
	po.heartbeat = -1
	po.records = 200
	var addrs []string
	for _, m := range body.Members {
		addrs = append(addrs, m.Addr)
	}
	po.peers = strings.Join(addrs, ",")
	var pout bytes.Buffer
	if err := run(po, &pout, nil); err != nil {
		t.Fatalf("peers loadgen: %v", err)
	}
	if !strings.Contains(pout.String(), "2 remote nodes") {
		t.Fatalf("peers loadgen output:\n%s", pout.String())
	}
}

// TestSortedKeys pins the tiny insertion sort used for balance output.
func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]uint64{"n2": 1, "n0": 2, "n10": 3, "n1": 4})
	want := fmt.Sprint([]string{"n0", "n1", "n10", "n2"})
	if fmt.Sprint(got) != want {
		t.Fatalf("sortedKeys = %v, want %v", got, want)
	}
}
