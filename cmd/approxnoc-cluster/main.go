// Command approxnoc-cluster runs the horizontally scaled gateway: N
// approximation/compression nodes behind a consistent-hash ring keyed
// by flow (src, dst), so each flow's codec state lives on exactly one
// node. It can launch an in-process cluster, act as the seed and
// monitor for externally started approxnoc-serve nodes, or drive load
// at either.
//
// Launch a 4-node in-process DI-VAXX cluster with the membership and
// metrics endpoint:
//
//	approxnoc-cluster -nodes 4 -scheme DI-VAXX -threshold 5 -debug-addr :9555
//
// Form a view over externally started nodes and serve as their seed:
//
//	approxnoc-cluster -peers host1:9444,host2:9444 -debug-addr :9555
//
// Measure cluster throughput (in-process, or remote via -peers/-seed):
//
//	approxnoc-cluster -loadgen -nodes 4 -conns 4 -depth 8 -records 50000
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"approxnoc/internal/cluster"
	"approxnoc/internal/compress"
	"approxnoc/internal/obs"
	"approxnoc/internal/qos"
	"approxnoc/internal/serve"
)

func main() {
	nodes := flag.Int("nodes", 4, "in-process cluster size")
	peers := flag.String("peers", "", "comma-separated node addresses to form a view over instead of launching in-process nodes")
	seedURL := flag.String("seed", "", "bootstrap the view from this seed's /cluster/members endpoint instead of launching in-process nodes")
	schemeName := flag.String("scheme", "DI-VAXX", "Baseline | DI-COMP | DI-VAXX | FP-COMP | FP-VAXX | BD-COMP | BD-VAXX")
	threshold := flag.Int("threshold", 10, "VAXX error threshold (%)")
	endpoints := flag.Int("endpoints", 32, "logical endpoints each node's gateway serves")
	shards := flag.Int("shards", 0, "codec pool shards per node (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	batch := flag.Int("batch", 0, "max coalesced batch per dispatch (0 = default)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default)")
	heartbeat := flag.Duration("heartbeat", 0, "health-probe interval (0 = default, negative disables)")
	warmStart := flag.Bool("warm-start", false, "seed nodes added after launch with their ring neighbor's dictionary image")
	loadgen := flag.Bool("loadgen", false, "measure cluster throughput and exit")
	conns := flag.Int("conns", 4, "concurrent cluster clients for -loadgen")
	depth := flag.Int("depth", 8, "calls in flight per client for -loadgen")
	words := flag.Int("words", 16, "block payload size in 32-bit words for -loadgen")
	records := flag.Int("records", 20000, "total requests for -loadgen, summed over all clients")
	qosOn := flag.Bool("qos", false, "enable the load-driven QoS threshold controller on every owned node (needs FP-VAXX)")
	qosMax := flag.Int("qos-max", 0, "QoS threshold cap in percent (0 = default)")
	budgets := flag.String("budgets", "", "per-tenant error budgets on every owned node, tenant=capacity[:refillPerSec],...")
	tenant := flag.String("tenant", "", "tenant stamped on -loadgen requests, spending that tenant's error budget")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /cluster/members, /cluster/join (and /cluster/drain for owned nodes) on this address")
	flag.Parse()

	if err := run(options{
		nodes: *nodes, peers: *peers, seedURL: *seedURL,
		schemeName: *schemeName, threshold: *threshold, endpoints: *endpoints,
		shards: *shards, queue: *queue, batch: *batch,
		vnodes: *vnodes, heartbeat: *heartbeat, warmStart: *warmStart,
		loadgen: *loadgen, conns: *conns, depth: *depth, words: *words, records: *records,
		qos: *qosOn, qosMax: *qosMax, budgets: *budgets, tenant: *tenant,
		debugAddr: *debugAddr,
	}, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "approxnoc-cluster:", err)
		os.Exit(1)
	}
}

// options carries the parsed flags; ready (when non-nil) receives the
// bound debug address once serving, which tests use instead of stdout
// scraping.
type options struct {
	nodes                int
	peers, seedURL       string
	schemeName           string
	threshold, endpoints int
	shards, queue, batch int
	vnodes               int
	heartbeat            time.Duration
	warmStart            bool
	loadgen              bool
	conns, depth, words  int
	records              int
	qos                  bool
	qosMax               int
	budgets, tenant      string
	debugAddr            string
}

func run(o options, out io.Writer, ready chan<- string) error {
	scheme, err := compress.ParseScheme(o.schemeName)
	if err != nil {
		return err
	}
	if o.loadgen && (o.conns < 1 || o.depth < 1 || o.words < 1 || o.records < 1) {
		return fmt.Errorf("-conns, -depth, -words and -records must each be >= 1 (got %d, %d, %d, %d)",
			o.conns, o.depth, o.words, o.records)
	}
	vcfg := cluster.ViewConfig{VNodes: o.vnodes, HeartbeatEvery: o.heartbeat}
	lg := cluster.Loadgen{
		Nodes: o.nodes, Conns: o.conns, Depth: o.depth,
		Words: o.words, Records: o.records, Endpoints: o.endpoints,
		Tenant: o.tenant,
	}
	var qcfg *qos.Config
	if o.qos || o.budgets != "" {
		qcfg = &qos.Config{
			Controller: qos.ControllerConfig{BaselinePct: o.threshold, MaxPct: o.qosMax},
			Interval:   100 * time.Millisecond,
		}
		if !o.qos && o.qosMax == 0 {
			qcfg.Controller.MaxPct = -1 // budgets only: pin the cap at the baseline
		}
		b, err := qos.ParseBudgets(o.budgets)
		if err != nil {
			return err
		}
		qcfg.Budgets = b
	}

	// Remote modes: the view mirrors nodes someone else runs.
	if o.peers != "" || o.seedURL != "" {
		var v *cluster.View
		if o.seedURL != "" {
			v, err = cluster.DialSeed(o.seedURL, vcfg)
		} else {
			v, err = cluster.NewViewFromAddrs(vcfg, strings.Split(o.peers, ","))
		}
		if err != nil {
			return err
		}
		defer v.Close()
		if o.loadgen {
			rig, err := cluster.NewViewLoadgenRig(v, cluster.ClientConfig{}, lg)
			if err != nil {
				return err
			}
			res, err := rig.Run(0)
			if cerr := rig.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			printLoadgen(out, fmt.Sprintf("%d remote nodes", len(v.Members())), lg, res)
			return nil
		}
		fmt.Fprintf(out, "view over %d remote nodes (prober keeps membership current)\n", len(v.Members()))
		return serveDebug(o.debugAddr, v, v.Handler(), out, ready)
	}

	// In-process modes.
	clcfg := cluster.Config{
		Nodes: o.nodes,
		Serve: serve.Config{
			Nodes: o.endpoints, Scheme: scheme, ThresholdPct: o.threshold,
			Shards: o.shards, QueueDepth: o.queue, MaxBatch: o.batch,
			QoS: qcfg,
		},
		View:      vcfg,
		WarmStart: o.warmStart,
	}
	if o.loadgen {
		res, err := cluster.RunLoopback(clcfg, cluster.ClientConfig{}, lg)
		if err != nil {
			return err
		}
		printLoadgen(out, fmt.Sprintf("%d nodes", o.nodes), lg, res)
		return nil
	}
	cl, err := cluster.New(clcfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Fprintf(out, "cluster of %d %v nodes, %d endpoints, threshold %d%%\n",
		o.nodes, scheme, o.endpoints, o.threshold)
	for _, m := range cl.View().Members() {
		fmt.Fprintf(out, "  %-6s %s\n", m.ID, m.Addr)
	}
	return serveDebug(o.debugAddr, cl.View(), cl.Handler(), out, ready)
}

// serveDebug serves metrics and membership until the listener dies. An
// empty addr means there is nothing to serve, which only makes sense
// transiently — report it instead of spinning forever.
func serveDebug(addr string, v *cluster.View, members http.Handler, out io.Writer, ready chan<- string) error {
	if addr == "" {
		return fmt.Errorf("nothing to do: server mode needs -debug-addr (or use -loadgen)")
	}
	reg := obs.NewRegistry()
	v.RegisterMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/cluster/", members)
	mux.Handle("/dict/", members)
	mux.Handle("/", obs.Handler(reg, nil))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "membership and metrics on http://%s/ (/metrics /cluster/members)\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return http.Serve(ln, mux)
}

// printLoadgen renders one loadgen measurement.
func printLoadgen(out io.Writer, what string, lg cluster.Loadgen, res cluster.LoadgenResult) {
	fmt.Fprintf(out, "loadgen             %s, %d clients x depth %d, %d-word blocks\n",
		what, lg.Conns, lg.Depth, lg.Words)
	fmt.Fprintf(out, "throughput          %.0f records/sec (%.2f MB/s payload), %d records in %v\n",
		res.RecordsPerSec, res.PayloadMBPerSec, res.Records, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "retries             %d overload, %d failovers\n", res.OverloadRetries, res.Failovers)
	if res.BudgetRefused > 0 {
		fmt.Fprintf(out, "qos                 %d records refused with ErrBudgetExhausted\n", res.BudgetRefused)
	}
	fmt.Fprintf(out, "balance            ")
	for _, m := range sortedKeys(res.PerNode) {
		fmt.Fprintf(out, " %s=%d", m, res.PerNode[m])
	}
	fmt.Fprintln(out)
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
