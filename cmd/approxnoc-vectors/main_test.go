package main

import (
	"testing"

	"approxnoc/internal/vectors"
)

// TestCheckedInVectorsRegenerate is the acceptance gate: every golden
// file in the repository must regenerate byte-identically with the
// default seed.
func TestCheckedInVectorsRegenerate(t *testing.T) {
	bad, err := vectors.VerifyAll("../..", vectors.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range bad {
		t.Errorf("%s is stale or missing; run: go run ./cmd/approxnoc-vectors", p)
	}
}

// TestGenerateDeterministic pins that two independent generations of
// every suite agree — no hidden time, map-order, or rand dependence.
func TestGenerateDeterministic(t *testing.T) {
	for _, s := range vectors.Suites {
		a, err := vectors.Generate(s.Name, vectors.DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := vectors.Generate(s.Name, vectors.DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("suite %s is nondeterministic", s.Name)
		}
	}
}
