// Command approxnoc-vectors regenerates (or verifies) the checked-in
// golden test vectors. Run from the repository root:
//
//	go run ./cmd/approxnoc-vectors            # rewrite all golden files
//	go run ./cmd/approxnoc-vectors -check     # verify without writing
//	go run ./cmd/approxnoc-vectors -list      # show the files covered
//
// Generation is deterministic for a given -seed; the per-package golden
// tests pin the checked-in files to the default seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"approxnoc/internal/vectors"
)

func main() {
	var (
		seed  = flag.Uint64("seed", vectors.DefaultSeed, "generation seed")
		root  = flag.String("root", ".", "repository root the golden paths are relative to")
		check = flag.Bool("check", false, "verify files instead of writing them")
		list  = flag.Bool("list", false, "list golden files and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range vectors.Suites {
			fmt.Printf("%-8s %s\n", s.Name, s.Path)
		}
		return
	}
	if *check {
		bad, err := vectors.VerifyAll(*root, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "approxnoc-vectors:", err)
			os.Exit(1)
		}
		if len(bad) > 0 {
			for _, p := range bad {
				fmt.Fprintf(os.Stderr, "approxnoc-vectors: %s is stale or missing\n", p)
			}
			os.Exit(1)
		}
		fmt.Printf("approxnoc-vectors: %d golden files up to date\n", len(vectors.Suites))
		return
	}
	if err := vectors.WriteAll(*root, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "approxnoc-vectors:", err)
		os.Exit(1)
	}
	fmt.Printf("approxnoc-vectors: wrote %d golden files under %s\n", len(vectors.Suites), *root)
}
