// Command approxnoc-sim runs a single NoC simulation with a chosen
// topology, scheme, traffic pattern and injection rate, and prints the
// resulting latency, throughput, compression and power statistics.
//
// Usage:
//
//	approxnoc-sim -scheme DI-VAXX -pattern uniform-random -rate 0.2 \
//	              -benchmark ssca2 -cycles 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"approxnoc/internal/compress"
	"approxnoc/internal/noc"
	"approxnoc/internal/obs"
	"approxnoc/internal/power"
	"approxnoc/internal/topology"
	"approxnoc/internal/traffic"
	"approxnoc/internal/workload"
)

func main() {
	width := flag.Int("width", 4, "mesh width")
	height := flag.Int("height", 4, "mesh height")
	conc := flag.Int("concentration", 2, "tiles per router")
	schemeName := flag.String("scheme", "DI-VAXX", "Baseline | DI-COMP | DI-VAXX | FP-COMP | FP-VAXX | BD-COMP | BD-VAXX")
	threshold := flag.Int("threshold", 10, "VAXX error threshold (%)")
	mode := flag.String("mode", "synthetic", "synthetic | reqreply | replay")
	patternName := flag.String("pattern", "uniform-random", "uniform-random | transpose | bit-complement | hotspot")
	rate := flag.Float64("rate", 0.1, "offered load (flits/cycle/tile for synthetic; requests/cycle/tile for reqreply; packets/cycle aggregate for replay)")
	dataRatio := flag.Float64("data-ratio", 0.25, "data packet fraction (synthetic mode)")
	benchmark := flag.String("benchmark", "blackscholes", "benchmark value trace")
	approxRatio := flag.Float64("approx-ratio", 0.75, "approximable data packet fraction")
	traceFile := flag.String("trace", "", "trace file to replay (replay mode)")
	cycles := flag.Int("cycles", 100000, "injection cycles")
	seed := flag.Uint64("seed", 1, "seed")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace and pprof on this address while simulating")
	flag.Parse()

	if err := run(*width, *height, *conc, *schemeName, *threshold, *mode, *patternName,
		*rate, *dataRatio, *benchmark, *approxRatio, *traceFile, *cycles, *seed, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "approxnoc-sim:", err)
		os.Exit(1)
	}
}

func run(width, height, conc int, schemeName string, threshold int, mode, patternName string,
	rate, dataRatio float64, benchmark string, approxRatio float64, traceFile string, cycles int, seed uint64,
	debugAddr string) error {
	scheme, err := compress.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	pattern, err := traffic.ParsePattern(patternName)
	if err != nil {
		return err
	}
	model, err := workload.ByName(benchmark)
	if err != nil {
		return err
	}
	topo, err := topology.NewCMesh(width, height, conc)
	if err != nil {
		return err
	}
	factory, err := compress.FactoryFor(scheme, topo.Tiles(), threshold)
	if err != nil {
		return err
	}
	net, err := noc.New(topo, noc.DefaultConfig(), factory)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if debugAddr != "" {
		reg := obs.NewRegistry()
		tracer = obs.NewTracer(topo.Routers(), 4096)
		net.EnableObs(reg, tracer, 256)
		tracer.RegisterMetrics(reg)
		dbg, err := obs.StartDebugServer(debugAddr, reg, tracer)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug endpoints      http://%s/ (/metrics /trace /debug/pprof)\n", dbg.Addr())
	}
	src := model.NewSource(seed, approxRatio)
	var res traffic.RunResult
	switch mode {
	case "synthetic":
		inj, err := traffic.New(net, traffic.Config{
			Pattern:   pattern,
			FlitRate:  rate,
			DataRatio: dataRatio,
			Source:    src,
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		res = traffic.Run(net, inj, cycles, true)
	case "reqreply":
		rr, err := traffic.NewReqReply(net, rate, src, seed)
		if err != nil {
			return err
		}
		res = traffic.RunReqReply(net, rr, cycles)
	case "replay":
		if traceFile == "" {
			return fmt.Errorf("replay mode needs -trace")
		}
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err := traffic.ReadTrace(f)
		if err != nil {
			return err
		}
		rp, err := traffic.NewReplay(net, recs, rate)
		if err != nil {
			return err
		}
		res = traffic.RunReplay(net, rp, cycles)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	net.PublishObs()
	s := res.Stats
	cs := net.CodecStats()
	em := power.Default45nm()

	fmt.Printf("topology            %s, scheme %s, pattern %s\n", topo, scheme, pattern)
	fmt.Printf("offered load        %.3f flits/cycle/tile, data ratio %.2f, benchmark %s\n",
		rate, dataRatio, benchmark)
	fmt.Printf("packets             sent %d  delivered %d (data %d, control %d, notif %d)\n",
		s.PacketsSent, s.PacketsDelivered, s.DataDelivered, s.ControlDelivered, s.NotifDelivered)
	fmt.Printf("flits               injected %d (data %d)  ejected %d\n",
		s.FlitsInjected, s.DataFlitsInjected, s.FlitsEjected)
	fmt.Printf("latency (cycles)    queue %.2f + net %.2f + decode %.2f = %.2f\n",
		s.AvgQueueLatency(), s.AvgNetLatency(), s.AvgDecodeLatency(), s.AvgPacketLatency())
	fmt.Printf("throughput          %.4f flits/cycle/tile over %d cycles\n",
		s.Throughput(topo.Tiles()), s.Cycles)
	fmt.Printf("compression         ratio %.3f  encoded %.3f (approx %.3f)  quality %.4f\n",
		cs.CompressionRatio(), cs.EncodedWordFraction(), cs.ApproxWordFraction(), cs.DataQuality())
	fmt.Printf("dynamic power       %.2f mW (45nm model at 2GHz)\n",
		em.DynamicPowerMW(net.Power(), cs, s.Cycles, 2))
	if tracer != nil {
		fmt.Printf("trace               %d events retained, %d dropped, %d evicted\n",
			tracer.Len(), tracer.Dropped(), tracer.Evicted())
	}
	return nil
}
