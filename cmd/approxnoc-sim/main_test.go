package main

import "testing"

func TestRunSyntheticSmoke(t *testing.T) {
	err := run(2, 2, 1, "FP-VAXX", 10, "synthetic", "uniform-random",
		0.05, 0.25, "blackscholes", 0.75, "", 1500, 1, "")
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReqReplySmoke(t *testing.T) {
	err := run(2, 2, 1, "Baseline", 0, "reqreply", "uniform-random",
		0.01, 0.25, "ssca2", 0.75, "", 1500, 1, "")
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := []struct {
		scheme, mode, pattern, bench, trace string
	}{
		{"NOPE", "synthetic", "uniform-random", "ssca2", ""},
		{"Baseline", "warp", "uniform-random", "ssca2", ""},
		{"Baseline", "synthetic", "spiral", "ssca2", ""},
		{"Baseline", "synthetic", "uniform-random", "doom", ""},
		{"Baseline", "replay", "uniform-random", "ssca2", ""},      // missing trace
		{"Baseline", "replay", "uniform-random", "ssca2", "/nope"}, // unreadable trace
	}
	for _, c := range cases {
		err := run(2, 2, 1, c.scheme, 10, c.mode, c.pattern, 0.05, 0.25, c.bench, 0.75, c.trace, 100, 1, "")
		if err == nil {
			t.Fatalf("accepted %+v", c)
		}
	}
}
