package main

import (
	"os"
	"strings"
	"testing"
)

func writeFile(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

const sampleBench = `goos: linux
goarch: amd64
pkg: approxnoc/internal/noc
cpu: unknown
BenchmarkStepObsOff-8   	  131581	      9127 ns/op	       0 B/op	       0 allocs/op
BenchmarkStepObsOn-8    	   50000	     21034 ns/op	      48 B/op	       2 allocs/op
PASS
ok  	approxnoc/internal/noc	2.532s
pkg: approxnoc
BenchmarkFig10-8        	       1	 512345678 ns/op	         1.842 gmean-fpvaxx-ratio	       100 B/op	       5 allocs/op
ok  	approxnoc	0.9s
`

func TestParse(t *testing.T) {
	cap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(cap.Benchmarks))
	}
	b := cap.Benchmarks[0]
	if b.Pkg != "approxnoc/internal/noc" || b.Name != "BenchmarkStepObsOff" {
		t.Fatalf("bad pkg/name: %q %q", b.Pkg, b.Name)
	}
	if b.NsPerOp != 9127 || b.Iters != 131581 || b.AllocsPerOp != 0 {
		t.Fatalf("bad standard units: %+v", b)
	}
	fig := cap.Benchmarks[2]
	if fig.Pkg != "approxnoc" || fig.Metrics["gmean-fpvaxx-ratio"] != 1.842 {
		t.Fatalf("custom metric not captured: %+v", fig)
	}
	if fig.BytesPerOp != 100 || fig.AllocsPerOp != 5 {
		t.Fatalf("units after a custom metric lost: %+v", fig)
	}
	if cap.Schema != "approxnoc-bench/v1" || cap.GOMAXPROCS < 1 {
		t.Fatalf("bad capture metadata: %+v", cap)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected error on input without benchmark lines")
	}
}

func TestCompare(t *testing.T) {
	write := func(name, body string) string {
		t.Helper()
		p := t.TempDir() + "/" + name
		if err := writeFile(p, body); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldJSON := `{"schema":"approxnoc-bench/v1","benchmarks":[
		{"pkg":"p","name":"BenchmarkA","ns_per_op":100,"allocs_per_op":0},
		{"pkg":"p","name":"BenchmarkB","ns_per_op":100,"allocs_per_op":2}]}`

	// Within tolerance, same allocs: passes.
	ok := `{"schema":"approxnoc-bench/v1","benchmarks":[
		{"pkg":"p","name":"BenchmarkA","ns_per_op":110,"allocs_per_op":0},
		{"pkg":"p","name":"BenchmarkB","ns_per_op":90,"allocs_per_op":2}]}`
	if code := runCompare(write("old.json", oldJSON), write("ok.json", ok), 0.25, 0); code != 0 {
		t.Fatalf("in-tolerance compare exited %d, want 0", code)
	}

	// 2x slower: fails.
	slow := `{"schema":"approxnoc-bench/v1","benchmarks":[
		{"pkg":"p","name":"BenchmarkA","ns_per_op":200,"allocs_per_op":0}]}`
	if code := runCompare(write("old2.json", oldJSON), write("slow.json", slow), 0.25, 0); code != 1 {
		t.Fatalf("regressed compare exited %d, want 1", code)
	}

	// Alloc growth fails even when ns/op improves...
	allocs := `{"schema":"approxnoc-bench/v1","benchmarks":[
		{"pkg":"p","name":"BenchmarkA","ns_per_op":50,"allocs_per_op":3}]}`
	if code := runCompare(write("old3.json", oldJSON), write("allocs.json", allocs), 0.25, 0); code != 1 {
		t.Fatalf("alloc-growth compare exited %d, want 1", code)
	}
	// ...unless it stays within the absolute allocslack allowance.
	if code := runCompare(write("old3b.json", oldJSON), write("allocs2.json", allocs), 0.25, 4); code != 0 {
		t.Fatalf("alloc growth within slack exited %d, want 0", code)
	}

	// New benchmarks never fail the gate.
	grown := `{"schema":"approxnoc-bench/v1","benchmarks":[
		{"pkg":"p","name":"BenchmarkA","ns_per_op":100,"allocs_per_op":0},
		{"pkg":"p","name":"BenchmarkB","ns_per_op":100,"allocs_per_op":2},
		{"pkg":"p","name":"BenchmarkC","ns_per_op":999,"allocs_per_op":9}]}`
	if code := runCompare(write("old4.json", oldJSON), write("grown.json", grown), 0.25, 0); code != 0 {
		t.Fatalf("grown-suite compare exited %d, want 0", code)
	}
}

func TestThroughputNote(t *testing.T) {
	ob := Bench{Metrics: map[string]float64{"records/sec": 100000, "retries": 3, "MB/s": 12}}
	nb := Bench{Metrics: map[string]float64{"records/sec": 200000, "MB/s": 24, "new/sec": 1}}
	note := throughputNote(ob, nb)
	if !strings.Contains(note, "records/sec 100000 -> 200000") || !strings.Contains(note, "MB/s 12 -> 24") {
		t.Fatalf("throughput metrics missing from note %q", note)
	}
	if strings.Contains(note, "retries") || strings.Contains(note, "new/sec") {
		t.Fatalf("non-shared or non-throughput metric leaked into note %q", note)
	}
}
