// Command benchjson converts `go test -bench` output into the JSON
// capture format committed as BENCH_*.json, and diffs two captures for
// the regression gate.
//
// Capture (stdin -> stdout):
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson > BENCH_5.json
//
// Compare (exits 1 on regression beyond tolerance):
//
//	benchjson -compare -old BENCH_5.json -new BENCH_6.json -tol 0.25
//
// The compare mode only gates ns/op and allocs/op: custom figure
// metrics (latencies, ratios) are simulation outputs whose drift is
// guarded by the determinism goldens, not by the benchmark harness.
// Throughput metrics shared by both sides (units ending in /s or /sec,
// e.g. the gateway family's records/sec) are displayed for context but
// never gate. -allocslack grants an absolute allocs/op allowance on top
// of the baseline for benchmarks whose steady state is near-zero but
// scheduling-sensitive on noisy runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Capture is the committed benchmark snapshot.
type Capture struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	CreatedAt  string  `json:"created_at"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark line. NsPerOp/BytesPerOp/AllocsPerOp hold the
// standard units; everything else (the figure headline metrics,
// blocks/sec, MB/s) lands in Metrics.
type Bench struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	compare := flag.Bool("compare", false, "diff two captures instead of parsing bench output")
	oldPath := flag.String("old", "", "baseline capture (compare mode)")
	newPath := flag.String("new", "", "candidate capture (compare mode)")
	tol := flag.Float64("tol", 0.25, "allowed fractional ns/op regression (compare mode)")
	allocSlack := flag.Float64("allocslack", 0, "allowed absolute allocs/op growth (compare mode)")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(*oldPath, *newPath, *tol, *allocSlack))
	}
	cap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cap); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output. Lines look like:
//
//	pkg: approxnoc/internal/noc
//	BenchmarkStepObsOff-8   131581   9127 ns/op   0 B/op   0 allocs/op
//
// with arbitrary extra "value unit" pairs from b.ReportMetric.
func parse(r io.Reader) (*Capture, error) {
	cap := &Capture{
		Schema:     "approxnoc-bench/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then at least one "value unit" pair.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{
			Pkg:   pkg,
			Name:  fields[0],
			Iters: iters,
		}
		// Strip the -N GOMAXPROCS suffix so captures from machines with
		// different core counts still line up in compare mode.
		if i := strings.LastIndex(b.Name, "-"); i > 0 {
			if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name = b.Name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		cap.Benchmarks = append(cap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return cap, nil
}

func load(path string) (*Capture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Capture
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &c, nil
}

// runCompare reports per-benchmark ns/op deltas and fails when the
// candidate is more than tol slower, or allocates more than allocSlack
// extra per op, than the baseline. Benchmarks present on only one side
// are reported but never fail the gate (suites grow over time, and CI
// compares kernel-only captures against full snapshots).
func runCompare(oldPath, newPath string, tol, allocSlack float64) int {
	if oldPath == "" || newPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -compare requires -old and -new")
		return 2
	}
	oldCap, err := load(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newCap, err := load(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	key := func(b Bench) string { return b.Pkg + "." + b.Name }
	oldBy := map[string]Bench{}
	for _, b := range oldCap.Benchmarks {
		oldBy[key(b)] = b
	}
	var keys []string
	newBy := map[string]Bench{}
	for _, b := range newCap.Benchmarks {
		k := key(b)
		newBy[k] = b
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := 0
	for _, k := range keys {
		nb := newBy[k]
		ob, ok := oldBy[k]
		if !ok {
			fmt.Printf("NEW   %-55s %12.0f ns/op %6.0f allocs/op\n", k, nb.NsPerOp, nb.AllocsPerOp)
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		status := "ok   "
		if delta > tol {
			status = "SLOW "
			failed++
		} else if nb.AllocsPerOp > ob.AllocsPerOp+allocSlack {
			status = "ALLOC"
			failed++
		}
		fmt.Printf("%s %-55s %12.0f -> %12.0f ns/op (%+6.1f%%)  allocs %4.0f -> %4.0f%s\n",
			status, k, ob.NsPerOp, nb.NsPerOp, 100*delta, ob.AllocsPerOp, nb.AllocsPerOp,
			throughputNote(ob, nb))
	}
	for k := range oldBy {
		if _, ok := newBy[k]; !ok {
			fmt.Printf("GONE  %-55s\n", k)
		}
	}
	if failed > 0 {
		fmt.Printf("benchjson: %d benchmark(s) regressed beyond %.0f%% ns/op tolerance or grew allocs/op\n", failed, 100*tol)
		return 1
	}
	fmt.Println("benchjson: no regressions")
	return 0
}

// throughputNote formats the throughput metrics (units ending in /s or
// /sec) both captures report for a benchmark — context for the humans
// reading a compare, never part of the gate.
func throughputNote(ob, nb Bench) string {
	var units []string
	for unit := range nb.Metrics {
		if _, ok := ob.Metrics[unit]; ok && (strings.HasSuffix(unit, "/s") || strings.HasSuffix(unit, "/sec")) {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	var sb strings.Builder
	for _, unit := range units {
		fmt.Fprintf(&sb, "  %s %.0f -> %.0f", unit, ob.Metrics[unit], nb.Metrics[unit])
	}
	return sb.String()
}
