// Command approxnoc-apps runs the application kernels through the cache
// substrate and reports output error and channel statistics — the §5.4
// application-level evaluation as a standalone tool.
//
// Usage:
//
//	approxnoc-apps -app ssca2 -scheme DI-VAXX -threshold 10
//	approxnoc-apps -app all -scheme FP-VAXX -threshold 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"approxnoc/internal/apps"
	"approxnoc/internal/compress"
)

func main() {
	appName := flag.String("app", "all", "benchmark kernel name, or 'all'")
	schemeName := flag.String("scheme", "DI-VAXX", "channel compression scheme")
	threshold := flag.Int("threshold", 10, "VAXX error threshold (%)")
	flag.Parse()

	if err := runApps(*appName, *schemeName, *threshold, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "approxnoc-apps:", err)
		os.Exit(1)
	}
}

// runApps executes the selected kernels and writes the result table to w.
func runApps(appName, schemeName string, threshold int, w io.Writer) error {
	scheme, err := compress.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	var list []apps.App
	if appName == "all" {
		list = apps.All()
	} else {
		a, err := apps.ByName(appName)
		if err != nil {
			return err
		}
		list = []apps.App{a}
	}

	fmt.Fprintf(w, "Application output error under %s at %d%% threshold\n", scheme, threshold)
	fmt.Fprintf(w, "%-14s %12s %10s %10s %12s %10s\n",
		"benchmark", "output error", "quality", "misses", "transfers", "approx")
	for _, a := range list {
		res, err := a.Run(scheme, threshold)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name(), err)
		}
		fmt.Fprintf(w, "%-14s %12.4f %10.4f %10d %12d %9.1f%%\n",
			a.Name(), res.OutputError, res.DataQuality,
			res.CacheStats.Misses, res.CacheStats.Transfers,
			100*res.Channel.ApproxWordFraction())
	}
	return nil
}
