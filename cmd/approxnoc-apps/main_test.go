package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAppsSingleKernel(t *testing.T) {
	var buf bytes.Buffer
	if err := runApps("blackscholes", "FP-VAXX", 10, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "blackscholes") || !strings.Contains(out, "FP-VAXX") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunAppsRejectsBadInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := runApps("doom", "FP-VAXX", 10, &buf); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if err := runApps("ssca2", "NOPE", 10, &buf); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
