// Command approxnoc-trace generates benchmark communication traces (the
// gem5-trace stand-in) and inspects existing trace files.
//
// Usage:
//
//	approxnoc-trace gen -benchmark ssca2 -packets 10000 -tiles 32 -out ssca2.trace
//	approxnoc-trace info -in ssca2.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"approxnoc/internal/sim"
	"approxnoc/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = genCmd(os.Args[2:])
	case "info":
		err = infoCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "approxnoc-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: approxnoc-trace gen|info [flags]")
	os.Exit(2)
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	benchmark := fs.String("benchmark", "blackscholes", "benchmark model")
	packets := fs.Int("packets", 10000, "packet records to emit")
	tiles := fs.Int("tiles", 32, "tile count for src/dst assignment")
	approxRatio := fs.Float64("approx-ratio", 0.75, "approximable data fraction")
	seed := fs.Uint64("seed", 1, "seed")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	model, err := workload.ByName(*benchmark)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tw, err := workload.NewTraceWriter(w)
	if err != nil {
		return err
	}
	src := model.NewSource(*seed, *approxRatio)
	r := sim.NewRand(*seed ^ 0xDEADBEEF)
	for i := 0; i < *packets; i++ {
		s := r.Intn(*tiles)
		d := r.Intn(*tiles)
		if d == s {
			d = (d + 1) % *tiles
		}
		rec := workload.TraceRecord{Src: s, Dst: d}
		if src.NextIsData() {
			rec.IsData = true
			rec.Block = src.NextBlock()
		}
		if err := tw.Write(rec); err != nil {
			return err
		}
	}
	return tw.Flush()
}

func infoCmd(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("info: -in required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.NewTraceReader(f)
	if err != nil {
		return err
	}
	var total, data, approximable, floatBlocks int
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		if rec.IsData {
			data++
			if rec.Block.Approximable {
				approximable++
			}
			if rec.Block.DType.String() == "float32" {
				floatBlocks++
			}
		}
	}
	fmt.Printf("records        %d\n", total)
	fmt.Printf("data packets   %d (%.1f%%)\n", data, pct(data, total))
	fmt.Printf("approximable   %d (%.1f%% of data)\n", approximable, pct(approximable, data))
	fmt.Printf("float blocks   %d (%.1f%% of data)\n", floatBlocks, pct(floatBlocks, data))
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
