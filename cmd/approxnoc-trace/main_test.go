package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenAndInfo(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trace")
	if err := genCmd([]string{"-benchmark", "ssca2", "-packets", "200", "-tiles", "8", "-out", out}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
	if err := infoCmd([]string{"-in", out}); err != nil {
		t.Fatal(err)
	}
}

func TestGenRejectsUnknownBenchmark(t *testing.T) {
	if err := genCmd([]string{"-benchmark", "doom", "-packets", "5"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestInfoRequiresInput(t *testing.T) {
	if err := infoCmd(nil); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := infoCmd([]string{"-in", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
