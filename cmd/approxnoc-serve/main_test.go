package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"approxnoc/internal/compress"
	"approxnoc/internal/serve"
	"approxnoc/internal/sim"
	"approxnoc/internal/workload"
)

func selftestConfig(scheme compress.Scheme, threshold int) serve.Config {
	return serve.Config{
		Nodes: 8, Scheme: scheme, ThresholdPct: threshold,
		Shards: 4, QueueDepth: 256,
	}
}

func TestSelftestThresholdZero(t *testing.T) {
	if err := runSelftest(selftestConfig(compress.DIVaxx, 0), "ssca2", "", 300, 8, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSelftestApproximate(t *testing.T) {
	if err := runSelftest(selftestConfig(compress.FPVaxx, 10), "blackscholes", "", 200, 4, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSelftestLocked(t *testing.T) {
	cfg := selftestConfig(compress.DIComp, 0)
	cfg.Locked = true
	if err := runSelftest(cfg, "ssca2", "", 150, 4, 3); err != nil {
		t.Fatal(err)
	}
}

func TestSelftestFromTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	m, err := workload.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	src := m.NewSource(5, 0.75)
	rng := sim.NewRand(6)
	var buf bytes.Buffer
	w, err := workload.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		from := rng.Intn(8)
		rec := workload.TraceRecord{Src: from, Dst: (from + 1) % 8}
		if i%4 != 0 {
			rec.IsData = true
			rec.Block = src.NextBlock()
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSelftest(selftestConfig(compress.FPComp, 0), "", path, 0, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSelftestRejectsBadInputs(t *testing.T) {
	if err := runSelftest(selftestConfig(compress.DIVaxx, 0), "doom", "", 10, 2, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := runSelftest(selftestConfig(compress.DIVaxx, 0), "ssca2", "", 10, 0, 1); err == nil {
		t.Error("zero clients accepted")
	}
	if err := runSelftest(selftestConfig(compress.DIVaxx, 0), "", "/does/not/exist", 10, 2, 1); err == nil {
		t.Error("missing trace file accepted")
	}
	cfg := selftestConfig(compress.DIVaxx, 0)
	cfg.Nodes = 1
	if err := runSelftest(cfg, "ssca2", "", 10, 2, 1); err == nil {
		t.Error("single-node selftest accepted")
	}
}
