package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"approxnoc/internal/cluster"
	"approxnoc/internal/compress"
	"approxnoc/internal/serve"
	"approxnoc/internal/sim"
	"approxnoc/internal/workload"
)

func selftestConfig(scheme compress.Scheme, threshold int) serve.Config {
	return serve.Config{
		Nodes: 8, Scheme: scheme, ThresholdPct: threshold,
		Shards: 4, QueueDepth: 256,
	}
}

func TestSelftestThresholdZero(t *testing.T) {
	if err := runSelftest(selftestConfig(compress.DIVaxx, 0), "ssca2", "", 300, 8, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSelftestApproximate(t *testing.T) {
	if err := runSelftest(selftestConfig(compress.FPVaxx, 10), "blackscholes", "", 200, 4, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSelftestLocked(t *testing.T) {
	cfg := selftestConfig(compress.DIComp, 0)
	cfg.Locked = true
	if err := runSelftest(cfg, "ssca2", "", 150, 4, 3); err != nil {
		t.Fatal(err)
	}
}

func TestSelftestFromTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	m, err := workload.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	src := m.NewSource(5, 0.75)
	rng := sim.NewRand(6)
	var buf bytes.Buffer
	w, err := workload.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		from := rng.Intn(8)
		rec := workload.TraceRecord{Src: from, Dst: (from + 1) % 8}
		if i%4 != 0 {
			rec.IsData = true
			rec.Block = src.NextBlock()
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSelftest(selftestConfig(compress.FPComp, 0), "", path, 0, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSelftestRejectsBadInputs(t *testing.T) {
	if err := runSelftest(selftestConfig(compress.DIVaxx, 0), "doom", "", 10, 2, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := runSelftest(selftestConfig(compress.DIVaxx, 0), "ssca2", "", 10, 0, 1); err == nil {
		t.Error("zero clients accepted")
	}
	if err := runSelftest(selftestConfig(compress.DIVaxx, 0), "", "/does/not/exist", 10, 2, 1); err == nil {
		t.Error("missing trace file accepted")
	}
	cfg := selftestConfig(compress.DIVaxx, 0)
	cfg.Nodes = 1
	if err := runSelftest(cfg, "ssca2", "", 10, 2, 1); err == nil {
		t.Error("single-node selftest accepted")
	}
}

// TestLoadgenValidatesKnobs: each load-shape knob must be >= 1, with
// an error naming the flag (the -records semantics are
// total-across-connections, so a zero anywhere means no load at all).
func TestLoadgenValidatesKnobs(t *testing.T) {
	cfg := selftestConfig(compress.Baseline, 0)
	for _, tc := range []struct {
		lg   serve.Loadgen
		flag string
	}{
		{serve.Loadgen{Conns: 0, Depth: 1, Words: 1, Records: 1}, "-conns"},
		{serve.Loadgen{Conns: 1, Depth: -2, Words: 1, Records: 1}, "-depth"},
		{serve.Loadgen{Conns: 1, Depth: 1, Words: 0, Records: 1}, "-words"},
		{serve.Loadgen{Conns: 1, Depth: 1, Words: 1, Records: 0}, "-records"},
	} {
		err := runLoadgen(cfg, tc.lg)
		if err == nil || !strings.Contains(err.Error(), tc.flag) || !strings.Contains(err.Error(), ">= 1") {
			t.Errorf("loadgen %+v: got %v, want a %s >= 1 error", tc.lg, err, tc.flag)
		}
	}
}

// TestRunServerClusterJoin: a gateway started with -cluster-join
// announces itself to the seed's membership endpoint before serving.
func TestRunServerClusterJoin(t *testing.T) {
	if err := runServer(selftestConfig(compress.Baseline, 0), "127.0.0.1:0", "", "", "http://seed", ""); err == nil ||
		!strings.Contains(err.Error(), "-node-id") {
		t.Fatalf("cluster-join without node-id: got %v", err)
	}

	cl, err := cluster.New(cluster.Config{
		Nodes: 1,
		Serve: selftestConfig(compress.Baseline, 0),
		View:  cluster.ViewConfig{HeartbeatEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	seed := httptest.NewServer(cl.Handler())
	defer seed.Close()

	// runServer blocks in Serve; run it out of band and watch the seed's
	// membership for the announcement. The goroutine dies with the test
	// process.
	go runServer(selftestConfig(compress.Baseline, 0), "127.0.0.1:0", "", "ext0", seed.URL, "")
	deadline := time.Now().Add(10 * time.Second)
	for {
		var joined bool
		for _, m := range cl.View().Members() {
			if m.ID == "ext0" {
				joined = true
			}
		}
		if joined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never joined the seed; members %+v", cl.View().Members())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cl.View().Ring().Has("ext0") {
		t.Fatal("joined node missing from the seed's ring")
	}
}
