package main

import (
	"bufio"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"

	"approxnoc/internal/obs"
	"approxnoc/internal/serve"
)

// runObsDemo boots a gateway with the obs debug endpoint, drives a short
// workload through it in-process, scrapes /metrics and /trace over real
// HTTP, and fails unless the scrape parses and reflects the traffic. It
// is the `make obs-demo` entry point and doubles as an end-to-end check
// that a live gateway can be watched.
func runObsDemo(cfg serve.Config, benchmark string, records int, seed uint64, debugAddr string) error {
	if debugAddr == "" {
		debugAddr = "127.0.0.1:0"
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16, 4096)
	cfg.Tracer = tracer

	gw, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer gw.Close()
	gw.RegisterMetrics(reg)
	tracer.RegisterMetrics(reg)

	dbg, err := obs.StartDebugServer(debugAddr, reg, tracer)
	if err != nil {
		return err
	}
	defer dbg.Close()
	fmt.Printf("obs-demo            debug endpoints on http://%s/\n", dbg.Addr())

	recs, err := selftestRecords(cfg, benchmark, "", records, seed)
	if err != nil {
		return err
	}
	done := 0
	for _, r := range recs {
		if !r.IsData {
			continue
		}
		for {
			_, err := gw.Do(serve.Request{Src: r.Src, Dst: r.Dst, Block: r.Block})
			if errors.Is(err, serve.ErrOverloaded) {
				runtime.Gosched()
				continue
			}
			if err != nil {
				return fmt.Errorf("obs-demo transfer: %w", err)
			}
			break
		}
		done++
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", dbg.Addr()))
	if err != nil {
		return fmt.Errorf("obs-demo scrape: %w", err)
	}
	exp, err := obs.ParseText(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("obs-demo: /metrics does not parse: %w", err)
	}
	for _, want := range []string{
		"serve_processed_total", "serve_queue_depth", "serve_latency_ns",
		"serve_codec_compression_ratio", "obs_trace_dropped_total",
	} {
		if _, ok := exp.Types[want]; !ok {
			return fmt.Errorf("obs-demo: scrape is missing family %q", want)
		}
	}
	processed := 0.0
	for name, v := range exp.Values {
		if strings.HasPrefix(name, "serve_processed_total{") {
			processed += v
		}
	}
	if int(processed) != done {
		return fmt.Errorf("obs-demo: scrape shows %d processed requests, pushed %d", int(processed), done)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/trace?n=32", dbg.Addr()))
	if err != nil {
		return fmt.Errorf("obs-demo trace scrape: %w", err)
	}
	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "cycle=") {
			resp.Body.Close()
			return fmt.Errorf("obs-demo: malformed trace line %q", line)
		}
		events++
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		return err
	}
	if events == 0 {
		return fmt.Errorf("obs-demo: /trace returned no events")
	}

	fmt.Printf("obs-demo            pushed %d blocks, scraped %d families / %d samples, %d trace events\n",
		done, len(exp.Types), exp.Samples, events)
	fmt.Println("obs-demo            scrape parses: ok")
	return nil
}
