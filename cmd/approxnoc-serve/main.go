// Command approxnoc-serve runs the approximation/compression gateway as
// a network service: cache blocks stream in over a length-prefixed binary
// TCP protocol, pass through the selected scheme's codec pair, and the
// (possibly approximated) blocks stream back with compression accounting.
//
// Serve a DI-VAXX gateway at a 5% error threshold:
//
//	approxnoc-serve -scheme DI-VAXX -threshold 5 -addr :9444
//
// Self-test mode replays a benchmark workload trace through the gateway
// with concurrent TCP clients, verifies threshold-0 results bit-for-bit
// against the serial channel path, and prints the gateway metrics:
//
//	approxnoc-serve -selftest -scheme DI-VAXX -threshold 0 -benchmark ssca2
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"approxnoc/internal/cluster"
	"approxnoc/internal/compress"
	"approxnoc/internal/obs"
	"approxnoc/internal/qos"
	"approxnoc/internal/serve"
	"approxnoc/internal/sim"
	"approxnoc/internal/traffic"
	"approxnoc/internal/value"
	"approxnoc/internal/workload"
)

// listenLoopback binds the selftest server to an ephemeral loopback port.
func listenLoopback() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

func main() {
	addr := flag.String("addr", ":9444", "TCP listen address")
	schemeName := flag.String("scheme", "DI-VAXX", "Baseline | DI-COMP | DI-VAXX | FP-COMP | FP-VAXX | BD-COMP | BD-VAXX")
	threshold := flag.Int("threshold", 10, "VAXX error threshold (%)")
	nodes := flag.Int("nodes", 32, "logical endpoints the gateway serves")
	shards := flag.Int("shards", 0, "codec pool shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	batch := flag.Int("batch", 0, "max coalesced batch per dispatch (0 = default)")
	locked := flag.Bool("locked", false, "mutex-guarded single codec pool instead of shards")
	adaptive := flag.Bool("adaptive", false, "wrap codecs with the compression on/off controller")
	selftest := flag.Bool("selftest", false, "replay a workload through the gateway and exit")
	loadgen := flag.Bool("loadgen", false, "measure loopback wire-path throughput and exit")
	conns := flag.Int("conns", 1, "TCP connections for -loadgen")
	depth := flag.Int("depth", 8, "pipelined requests in flight per connection for -loadgen")
	words := flag.Int("words", 16, "block payload size in 32-bit words for -loadgen")
	benchmark := flag.String("benchmark", "ssca2", "benchmark trace for -selftest")
	records := flag.Int("records", 2000, "trace records for -selftest; total requests for -loadgen, summed over all connections (split evenly across -conns, not per connection)")
	clients := flag.Int("clients", 16, "concurrent TCP clients for -selftest")
	trace := flag.String("trace", "", "replay an ANTR trace file instead of a synthetic workload (-selftest)")
	seed := flag.Uint64("seed", 1, "seed for the synthetic workload (-selftest)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace and pprof on this address")
	obsDemo := flag.Bool("obs-demo", false, "boot a gateway with the debug endpoint, scrape /metrics and /trace, verify the scrape parses, and exit")
	qosOn := flag.Bool("qos", false, "enable the load-driven QoS threshold controller (degrade quality before refusing work; needs FP-VAXX)")
	qosMax := flag.Int("qos-max", 0, "QoS threshold cap in percent (0 = default)")
	qosInterval := flag.Duration("qos-interval", 100*time.Millisecond, "QoS control-loop sampling period")
	budgets := flag.String("budgets", "", "per-tenant error budgets, tenant=capacity[:refillPerSec],... (enables budget enforcement)")
	tenant := flag.String("tenant", "", "tenant stamped on -loadgen requests, spending that tenant's error budget")
	nodeID := flag.String("node-id", "", "this node's cluster identity (required with -cluster-join)")
	clusterJoin := flag.String("cluster-join", "", "announce this node to a cluster seed's /cluster/join endpoint (e.g. http://seed:9555)")
	advertise := flag.String("advertise", "", "address to announce to the cluster seed (default: the -addr listen address)")
	flag.Parse()

	cfg := serve.Config{
		Nodes: *nodes, Scheme: compress.Baseline, ThresholdPct: *threshold,
		Shards: *shards, QueueDepth: *queue, MaxBatch: *batch,
		Locked: *locked, Adaptive: *adaptive,
	}
	scheme, err := compress.ParseScheme(*schemeName)
	if err == nil {
		cfg.QoS, err = qosConfig(*qosOn, *qosMax, *threshold, *qosInterval, *budgets)
	}
	if err == nil {
		cfg.Scheme = scheme
		switch {
		case *obsDemo:
			err = runObsDemo(cfg, *benchmark, *records, *seed, *debugAddr)
		case *selftest:
			err = runSelftest(cfg, *benchmark, *trace, *records, *clients, *seed)
		case *loadgen:
			err = runLoadgen(cfg, serve.Loadgen{Conns: *conns, Depth: *depth, Words: *words, Records: *records, Tenant: *tenant})
		default:
			err = runServer(cfg, *addr, *debugAddr, *nodeID, *clusterJoin, *advertise)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "approxnoc-serve:", err)
		os.Exit(1)
	}
}

// qosConfig assembles the gateway QoS configuration from the -qos,
// -qos-max, -qos-interval, and -budgets flags; nil when QoS is off.
// -budgets without -qos enforces budgets with the threshold pinned at
// the configured baseline (no controller movement, any scheme works).
func qosConfig(on bool, maxPct, baselinePct int, interval time.Duration, budgetSpec string) (*qos.Config, error) {
	if !on && budgetSpec == "" {
		return nil, nil
	}
	q := &qos.Config{
		Controller: qos.ControllerConfig{BaselinePct: baselinePct, MaxPct: maxPct},
		Interval:   interval,
	}
	if !on && maxPct == 0 {
		q.Controller.MaxPct = -1 // budgets only: pin the cap at the baseline
	}
	b, err := qos.ParseBudgets(budgetSpec)
	if err != nil {
		return nil, err
	}
	q.Budgets = b
	return q, nil
}

// runServer serves the gateway until the listener fails (e.g. the
// process is killed). A non-empty debugAddr additionally serves the obs
// debug endpoints next to the TCP protocol port; a non-empty seed URL
// announces this node to a cluster's membership endpoint before
// serving, so cluster clients start routing flows here.
func runServer(cfg serve.Config, addr, debugAddr, nodeID, seedURL, advertise string) error {
	if seedURL != "" && nodeID == "" {
		return fmt.Errorf("-cluster-join requires -node-id")
	}
	var reg *obs.Registry
	var tracer *obs.Tracer
	if debugAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(16, 4096)
		cfg.Tracer = tracer
	}
	gw, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer gw.Close()
	srv := serve.NewServer(gw)
	if reg != nil {
		gw.RegisterMetrics(reg)
		srv.RegisterMetrics(reg)
		tracer.RegisterMetrics(reg)
		dbg, err := obs.StartDebugServer(debugAddr, reg, tracer)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug endpoints on http://%s/ (/metrics /trace /debug/pprof)\n", dbg.Addr())
	}
	eff := gw.Config()
	fmt.Printf("serving %v gateway: %d nodes, %d shards (locked=%v), queue %d, batch %d, threshold %d%%\n",
		eff.Scheme, eff.Nodes, eff.Shards, eff.Locked, eff.QueueDepth, eff.MaxBatch, eff.ThresholdPct)
	if ctl := gw.QoSController(); ctl != nil {
		c := ctl.Config()
		fmt.Printf("qos                 threshold %d..%d%% step %d, watermarks %.2f/%.2f, %d budgeted tenants\n",
			c.BaselinePct, c.MaxPct, c.StepPct, c.LowerAt, c.RaiseAt, len(gw.Budgets()))
	}
	srv.NodeID = nodeID
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	if seedURL != "" {
		// Announce only once the listener is up, so the seed's prober
		// can immediately confirm the node healthy. The advertised
		// address must be one peers can dial; the bound address is only
		// a sane default when -addr names a reachable interface.
		if advertise == "" {
			advertise = ln.Addr().String()
		}
		if err := cluster.JoinSeed(seedURL, nodeID, advertise); err != nil {
			ln.Close()
			return err
		}
		fmt.Printf("joined cluster at %s as %q advertising %s\n", seedURL, nodeID, advertise)
	}
	return srv.Serve(ln)
}

// runLoadgen measures loopback wire-path throughput: a gateway served on
// an ephemeral port, lg.Conns TCP connections each keeping lg.Depth
// requests in flight, lg.Records round trips total (split across the
// connections).
func runLoadgen(cfg serve.Config, lg serve.Loadgen) error {
	switch {
	case lg.Conns < 1:
		return fmt.Errorf("-conns must be >= 1, got %d", lg.Conns)
	case lg.Depth < 1:
		return fmt.Errorf("-depth must be >= 1, got %d", lg.Depth)
	case lg.Words < 1:
		return fmt.Errorf("-words must be >= 1, got %d", lg.Words)
	case lg.Records < 1:
		return fmt.Errorf("-records must be >= 1, got %d", lg.Records)
	}
	res, err := serve.RunLoopback(cfg, lg)
	if err != nil {
		return err
	}
	framesPerBatch := 0.0
	if res.Wire.WriteBatches > 0 {
		framesPerBatch = float64(res.Wire.WriteFrames) / float64(res.Wire.WriteBatches)
	}
	fmt.Printf("loadgen             %v gateway, %d conns x depth %d, %d-word blocks\n",
		cfg.Scheme, max(lg.Conns, 1), max(lg.Depth, 1), max(lg.Words, 1))
	fmt.Printf("throughput          %.0f records/sec (%.2f MB/s payload), %d records in %v\n",
		res.RecordsPerSec, res.PayloadMBPerSec, res.Records, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("wire                %d read frames, %d write batches (%.1f frames/batch), %d bytes out, %d overload retries\n",
		res.Wire.ReadFrames, res.Wire.WriteBatches, framesPerBatch, res.Wire.WriteBytes, res.Retries)
	if res.BudgetRefused > 0 {
		fmt.Printf("qos                 %d records refused with ErrBudgetExhausted\n", res.BudgetRefused)
	}
	return nil
}

// selftestRecords builds the data records to replay: either a recorded
// ANTR trace or a synthetic benchmark workload.
func selftestRecords(cfg serve.Config, benchmark, traceFile string, records int, seed uint64) ([]workload.TraceRecord, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := traffic.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		for i, r := range recs {
			if r.Src >= cfg.Nodes || r.Dst >= cfg.Nodes {
				return nil, fmt.Errorf("trace record %d addresses node pair (%d,%d) outside the %d-node gateway",
					i, r.Src, r.Dst, cfg.Nodes)
			}
		}
		return recs, nil
	}
	m, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("selftest needs at least 2 nodes, got %d", cfg.Nodes)
	}
	src := m.NewSource(seed, 0.75)
	rng := sim.NewRand(seed + 1)
	recs := make([]workload.TraceRecord, records)
	for i := range recs {
		from := rng.Intn(cfg.Nodes)
		recs[i] = workload.TraceRecord{
			Src: from, Dst: (from + 1 + rng.Intn(cfg.Nodes-1)) % cfg.Nodes,
			IsData: true, Block: src.NextBlock(),
		}
	}
	return recs, nil
}

// runSelftest replays the workload through a loopback TCP server with
// concurrent clients. At threshold 0 every delivered block is verified
// bit-for-bit against the serial fabric path; at any threshold,
// non-approximable blocks must come back untouched.
func runSelftest(cfg serve.Config, benchmark, traceFile string, records, clients int, seed uint64) error {
	if clients <= 0 {
		return fmt.Errorf("selftest needs at least 1 client, got %d", clients)
	}
	recs, err := selftestRecords(cfg, benchmark, traceFile, records, seed)
	if err != nil {
		return err
	}
	var data []workload.TraceRecord
	for _, r := range recs {
		if r.IsData {
			data = append(data, r)
		}
	}
	if len(data) == 0 {
		return fmt.Errorf("workload has no data records")
	}

	// The serial reference: the same scheme through one codec fabric,
	// single-threaded. At threshold 0 the gateway must reproduce it
	// bit-for-bit; above 0 the sharded PMT state may legitimately make
	// different (still threshold-bounded) approximation choices.
	factory, err := compress.FactoryFor(cfg.Scheme, cfg.Nodes, cfg.ThresholdPct)
	if err != nil {
		return err
	}
	serial := compress.NewFabric(cfg.Nodes, factory)
	want := make([]*value.Block, len(data))
	for i, r := range data {
		want[i] = serial.Transfer(r.Src, r.Dst, r.Block.Clone())
	}
	thr := 0.0
	if cfg.Scheme.IsVaxx() {
		thr = float64(cfg.ThresholdPct) / 100
	}

	gw, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer gw.Close()
	srv := serve.NewServer(gw)
	ln, err := listenLoopback()
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	var mismatches sync.Map
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := serve.Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			defer cl.Close()
			for i := c; i < len(data); i += clients {
				r := data[i]
				var res serve.Result
				for {
					res, err = cl.Do(serve.Request{
						Src: r.Src, Dst: r.Dst, Block: r.Block,
						ThresholdPct: serve.DefaultThreshold,
					})
					if errors.Is(err, serve.ErrOverloaded) {
						runtime.Gosched()
						continue
					}
					if err != nil {
						errs <- fmt.Errorf("client %d record %d: %w", c, i, err)
						return
					}
					break
				}
				if thr == 0 && !res.Block.Equal(want[i]) {
					mismatches.Store(i, "diverges from serial path")
					continue
				}
				if !r.Block.Approximable && !res.Block.Equal(r.Block) {
					mismatches.Store(i, "non-approximable block altered")
					continue
				}
				for w := range r.Block.Words {
					if value.RelError(r.Block.Words[w], res.Block.Words[w], r.Block.DType) > thr+1e-9 {
						mismatches.Store(i, "word error exceeds threshold")
						break
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	bad := 0
	mismatches.Range(func(k, v any) bool { bad++; return true })

	m := gw.Metrics()
	cs := gw.CodecStats()
	fmt.Printf("selftest            %v, %d nodes, %d shards (locked=%v), threshold %d%%\n",
		gw.Config().Scheme, gw.Config().Nodes, gw.Config().Shards, gw.Config().Locked, gw.Config().ThresholdPct)
	fmt.Printf("replayed            %d data records via %d TCP clients\n", len(data), clients)
	fmt.Println(m)
	fmt.Printf("codec               ratio %.3f  encoded %.3f (approx %.3f)  quality %.4f\n",
		cs.CompressionRatio(), cs.EncodedWordFraction(), cs.ApproxWordFraction(), cs.DataQuality())
	if bad > 0 {
		return fmt.Errorf("%d of %d blocks failed verification", bad, len(data))
	}
	if thr == 0 {
		fmt.Println("verify              gateway results bit-identical to the serial fabric path")
	} else {
		fmt.Printf("verify              every word within the %d%% error threshold\n", cfg.ThresholdPct)
	}
	srv.Close()
	gw.Close()
	return <-serveErr
}
