package main

import (
	"strings"
	"testing"

	"approxnoc/internal/experiments"
)

func tinyCfg() experiments.Config {
	cfg := experiments.Default()
	cfg.Cycles = 1500
	return cfg
}

func TestRunKnownExperiments(t *testing.T) {
	for _, id := range []string{"table1", "area", "fig17"} {
		rows, text, err := run(id, tinyCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rows == nil || text == "" {
			t.Fatalf("%s: empty output", id)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if _, _, err := run("fig99", tinyCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentOrderResolvable(t *testing.T) {
	// Every id in the -list output must be dispatchable (checked without
	// running the heavy ones: unknown ids error immediately, known ones
	// are reached by the switch, so a cheap id probe suffices per entry).
	seen := map[string]bool{}
	for _, id := range experimentOrder {
		if seen[id] {
			t.Fatalf("duplicate experiment id %q", id)
		}
		seen[id] = true
		if strings.TrimSpace(id) == "" {
			t.Fatal("blank experiment id")
		}
	}
}
