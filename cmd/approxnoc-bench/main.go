// Command approxnoc-bench regenerates the tables and figures of the
// APPROX-NoC paper's evaluation (§5). Each experiment id maps to one
// artifact; see DESIGN.md's experiment index.
//
// Usage:
//
//	approxnoc-bench -exp fig9 [-cycles 100000] [-threshold 10] [-ratio 0.75]
//	approxnoc-bench -exp all
//	approxnoc-bench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"approxnoc/internal/cluster"
	"approxnoc/internal/compress"
	"approxnoc/internal/experiments"
	"approxnoc/internal/serve"
)

// experimentOrder drives `-exp all` and must list each artifact exactly
// once: fig10a/fig10b render the same table, so only the combined fig10
// id appears here (both aliases still resolve via -exp).
var experimentOrder = []string{
	"table1", "fig9", "fig10", "fig11", "fig12",
	"fig13", "fig14", "fig15", "fig16", "fig17", "area",
	"ablation-overlap", "ablation-pmt", "ablation-window", "ablation-adaptive",
	"extension-bdi", "ablation-matchunits", "ablation-router", "fig16-measured",
	"gateway", "cluster",
}

func main() {
	os.Exit(realMain())
}

// realMain carries the exit code back through a return so the deferred
// profile writers (cpuprofile/memprofile) flush before the process exits.
func realMain() int {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	cycles := flag.Int("cycles", 50000, "injection cycles per trace replay")
	threshold := flag.Int("threshold", 10, "VAXX error threshold (%)")
	ratio := flag.Float64("ratio", 0.75, "approximable data packet ratio")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel trace replays (results are identical for any value)")
	asJSON := flag.Bool("json", false, "emit rows as JSON instead of tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experimentOrder, "\n"))
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "approxnoc-bench: -exp required (try -list)")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxnoc-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "approxnoc-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "approxnoc-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "approxnoc-bench: memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiments.Default()
	cfg.Cycles = *cycles
	cfg.ErrorThreshold = *threshold
	cfg.ApproxRatio = *ratio
	cfg.Seed = *seed
	cfg.Jobs = *jobs

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	}
	for _, id := range ids {
		rows, out, err := run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxnoc-bench: %s: %v\n", id, err)
			return 1
		}
		if *asJSON {
			enc, err := json.MarshalIndent(map[string]any{"experiment": id, "rows": rows}, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "approxnoc-bench: %s: %v\n", id, err)
				return 1
			}
			fmt.Println(string(enc))
			continue
		}
		fmt.Println(out)
	}
	return 0
}

func run(id string, cfg experiments.Config) (any, string, error) {
	switch id {
	case "table1":
		t := experiments.Table1(cfg)
		return t, t, nil
	case "fig9":
		rows, err := experiments.Fig9(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatFig9(rows), nil
	case "fig10a", "fig10b", "fig10":
		rows, err := experiments.Fig10(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatFig10(rows), nil
	case "fig11":
		rows, err := experiments.Fig11(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatFig11(rows), nil
	case "fig12":
		pts, err := experiments.Fig12(cfg, nil, nil)
		if err != nil {
			return nil, "", err
		}
		return pts, experiments.FormatFig12(pts), nil
	case "fig13":
		rows, err := experiments.Fig13(cfg, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatFig13(rows, nil), nil
	case "fig14":
		rows, err := experiments.Fig14(cfg, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatFig14(rows, nil), nil
	case "fig15":
		rows, err := experiments.Fig15(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatFig15(rows), nil
	case "fig16":
		rows, err := experiments.Fig16(cfg, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatFig16(rows, nil), nil
	case "fig16-measured":
		rows, err := experiments.Fig16Measured(cfg.Runner(), nil, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatFig16Titled(
			"Fig. 16 (measured through the cycle-accurate NoC) — Application output error and normalized performance",
			rows, nil), nil
	case "fig17":
		r, err := experiments.Fig17(compress.FPVaxx, cfg.ErrorThreshold)
		if err != nil {
			return nil, "", err
		}
		return r, experiments.FormatFig17(r), nil
	case "area":
		a := experiments.AreaReport()
		return a, a, nil
	case "ablation-overlap":
		rows, err := experiments.AblationOverlap(cfg, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatAblationOverlap(rows), nil
	case "ablation-pmt":
		rows, err := experiments.AblationPMT(cfg, nil, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatAblationPMT(rows), nil
	case "ablation-router":
		rows, err := experiments.AblationRouter(cfg, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatAblationRouter(rows), nil
	case "ablation-matchunits":
		rows, err := experiments.AblationMatchUnits(cfg, nil, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatAblationMatchUnits(rows), nil
	case "extension-bdi":
		rows, err := experiments.ExtensionBDI(cfg, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatExtensionBDI(rows), nil
	case "ablation-adaptive":
		rows, err := experiments.AblationAdaptive(cfg, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatAblationAdaptive(rows), nil
	case "ablation-window":
		rows, err := experiments.AblationWindow(cfg, nil)
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.FormatAblationWindow(rows), nil
	case "gateway":
		rows, err := gatewayGrid(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, formatGatewayGrid(rows), nil
	case "cluster":
		rows, err := clusterGrid()
		if err != nil {
			return nil, "", err
		}
		return rows, formatClusterGrid(rows), nil
	default:
		return nil, "", fmt.Errorf("unknown experiment %q", id)
	}
}

// gatewayRow is one cell of the wire-path throughput grid: a live
// loopback gateway driven over TCP at a fixed connection count,
// pipeline depth, and payload size. Unlike the simulation figures these
// are wall-clock measurements — run-to-run variance is expected and the
// rows are not golden-pinned.
type gatewayRow struct {
	Conns           int     `json:"conns"`
	Depth           int     `json:"depth"`
	Words           int     `json:"words"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	PayloadMBPerSec float64 `json:"payload_mb_per_sec"`
	FramesPerBatch  float64 `json:"frames_per_batch"`
	Retries         int     `json:"retries"`
}

// gatewayGridRecords is the per-cell record count: large enough that
// setup and warmup are amortized away, small enough that the full grid
// stays a few seconds of wall clock.
const gatewayGridRecords = 20000

// gatewayGrid measures loopback wire throughput across connections x
// pipeline-depth x payload-size. The depth=1 rows are the lock-step
// (pre-pipelining) baseline the deeper rows are read against.
func gatewayGrid(cfg experiments.Config) ([]gatewayRow, error) {
	scfg := serve.Config{
		Nodes: 16, Scheme: compress.Baseline, ThresholdPct: cfg.ErrorThreshold,
		Shards: 4, QueueDepth: 4096,
	}
	var rows []gatewayRow
	for _, conns := range []int{1, 4} {
		for _, depth := range []int{1, 8, 64} {
			for _, words := range []int{16, 64} {
				res, err := serve.RunLoopback(scfg, serve.Loadgen{
					Conns: conns, Depth: depth, Words: words, Records: gatewayGridRecords,
				})
				if err != nil {
					return nil, fmt.Errorf("gateway grid conns=%d depth=%d words=%d: %w", conns, depth, words, err)
				}
				fpb := 0.0
				if res.Wire.WriteBatches > 0 {
					fpb = float64(res.Wire.WriteFrames) / float64(res.Wire.WriteBatches)
				}
				rows = append(rows, gatewayRow{
					Conns: conns, Depth: depth, Words: words,
					RecordsPerSec:   res.RecordsPerSec,
					PayloadMBPerSec: res.PayloadMBPerSec,
					FramesPerBatch:  fpb,
					Retries:         res.Retries,
				})
			}
		}
	}
	return rows, nil
}

func formatGatewayGrid(rows []gatewayRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Gateway wire path — loopback throughput (%d records per cell)\n", gatewayGridRecords)
	fmt.Fprintf(&sb, "%6s %6s %6s %14s %12s %13s %8s\n",
		"conns", "depth", "words", "records/sec", "payload MB/s", "frames/batch", "retries")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6d %6d %6d %14.0f %12.2f %13.1f %8d\n",
			r.Conns, r.Depth, r.Words, r.RecordsPerSec, r.PayloadMBPerSec, r.FramesPerBatch, r.Retries)
	}
	return sb.String()
}

// clusterRow is one cell of the cluster scaling grid: nodes x clients x
// pipeline depth, same aggregate load shape against growing node
// counts. Wall-clock measurements; not golden-pinned.
type clusterRow struct {
	Nodes           int     `json:"nodes"`
	Conns           int     `json:"conns"`
	Depth           int     `json:"depth"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	PayloadMBPerSec float64 `json:"payload_mb_per_sec"`
	OverloadRetries uint64  `json:"overload_retries"`
	Failovers       uint64  `json:"failovers"`
}

// clusterGridRecords matches the gateway grid's per-cell amortization.
const clusterGridRecords = 20000

// clusterGrid measures cluster goodput across nodes x clients x depth
// with per-node admission capacity pinned (one shard, small queue), the
// BenchmarkCluster shape: scaling comes from overload waste recovered,
// not CPU parallelism.
func clusterGrid() ([]clusterRow, error) {
	var rows []clusterRow
	for _, nodes := range []int{1, 2, 4} {
		for _, conns := range []int{1, 4} {
			for _, depth := range []int{8, 64} {
				res, err := cluster.RunLoopback(
					cluster.Config{
						Nodes: nodes,
						Serve: serve.Config{
							Nodes: 64, Scheme: compress.Baseline, ThresholdPct: 0,
							Shards: 1, QueueDepth: 4,
						},
						View: cluster.ViewConfig{HeartbeatEvery: -1},
					},
					cluster.ClientConfig{OverloadBackoff: -1},
					cluster.Loadgen{Nodes: nodes, Conns: conns, Depth: depth, Words: 16, Records: clusterGridRecords},
				)
				if err != nil {
					return nil, fmt.Errorf("cluster grid nodes=%d conns=%d depth=%d: %w", nodes, conns, depth, err)
				}
				rows = append(rows, clusterRow{
					Nodes: nodes, Conns: conns, Depth: depth,
					RecordsPerSec:   res.RecordsPerSec,
					PayloadMBPerSec: res.PayloadMBPerSec,
					OverloadRetries: res.OverloadRetries,
					Failovers:       res.Failovers,
				})
			}
		}
	}
	return rows, nil
}

func formatClusterGrid(rows []clusterRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster scaling — goodput under fixed per-node admission capacity (%d records per cell)\n", clusterGridRecords)
	fmt.Fprintf(&sb, "%6s %6s %6s %14s %12s %10s %10s\n",
		"nodes", "conns", "depth", "records/sec", "payload MB/s", "retries", "failovers")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6d %6d %6d %14.0f %12.2f %10d %10d\n",
			r.Nodes, r.Conns, r.Depth, r.RecordsPerSec, r.PayloadMBPerSec, r.OverloadRetries, r.Failovers)
	}
	return sb.String()
}
