// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5) at reduced scale, plus microbenchmarks of the core
// mechanisms. Each BenchmarkFigN drives the same code path as
// `approxnoc-bench -exp figN` and reports the figure's headline numbers
// as custom metrics, so `go test -bench .` doubles as a smoke
// reproduction. Increase -benchtime or use the CLI for full-scale runs.
package approxnoc_test

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"approxnoc"
	"approxnoc/internal/apps"
	"approxnoc/internal/compress"
	"approxnoc/internal/experiments"
	"approxnoc/internal/graph"
	"approxnoc/internal/serve"
	"approxnoc/internal/tcam"
	"approxnoc/internal/traffic"
	"approxnoc/internal/value"
	"approxnoc/internal/workload"
)

// benchCfg is the reduced-scale experiment configuration for benches.
func benchCfg() experiments.Config {
	cfg := experiments.Default()
	cfg.Cycles = 6000
	return cfg
}

func BenchmarkTable1(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if experiments.Table1(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig9 regenerates the latency-breakdown figure on the
// data-intensive benchmark and reports the headline: DI/FP-VAXX latency
// versus baseline on ssca2.
func BenchmarkFig9(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		report := func(bench string, s compress.Scheme, name string) {
			for _, r := range rows {
				if r.Benchmark == bench && r.Scheme == s {
					b.ReportMetric(r.TotalLat, name)
				}
			}
		}
		report("ssca2", compress.Baseline, "ssca2-baseline-cycles")
		report("ssca2", compress.DIVaxx, "ssca2-divaxx-cycles")
		report("ssca2", compress.FPVaxx, "ssca2-fpvaxx-cycles")
		report("AVG", compress.FPVaxx, "avg-fpvaxx-cycles")
	}
}

func BenchmarkFig10(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Benchmark == "GMEAN" {
				switch r.Scheme {
				case compress.FPVaxx:
					b.ReportMetric(r.Ratio, "gmean-fpvaxx-ratio")
					b.ReportMetric(r.ApproxFrac, "gmean-fpvaxx-approxfrac")
				case compress.FPComp:
					b.ReportMetric(r.Ratio, "gmean-fpcomp-ratio")
				}
			}
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if r.Scheme == compress.FPVaxx {
				sum += r.NormFlits
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "fpvaxx-norm-dataflits")
	}
}

func BenchmarkFig12(b *testing.B) {
	cfg := benchCfg()
	cfg.Cycles = 3000
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12(cfg, []string{"blackscholes"}, []float64{0.1, 0.3, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		sat := experiments.SaturationThroughput(pts, "blackscholes", traffic.UniformRandom)
		b.ReportMetric(sat[compress.Baseline], "baseline-sat-rate")
		b.ReportMetric(sat[compress.FPVaxx], "fpvaxx-sat-rate")
	}
}

func BenchmarkFig13(b *testing.B) {
	cfg := benchCfg()
	cfg.Cycles = 3000
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(cfg, []int{5, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Benchmark == "ssca2" && r.Family == "FP-based" {
				b.ReportMetric(r.ThresholdLat[20], "ssca2-fp-lat-at-20pct")
			}
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	cfg := benchCfg()
	cfg.Cycles = 3000
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(cfg, []int{25, 75})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Benchmark == "ssca2" && r.Family == "DI-based" {
				b.ReportMetric(r.RatioLat[75], "ssca2-di-lat-at-75pct")
			}
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Benchmark == "ssca2" && r.Scheme == compress.FPVaxx {
				b.ReportMetric(r.NormPower, "ssca2-fpvaxx-normpower")
			}
		}
	}
}

func BenchmarkFig16(b *testing.B) {
	cfg := benchCfg()
	cfg.Cycles = 3000
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16(cfg, []int{0, 10})
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.ErrorAt[10] > worst {
				worst = r.ErrorAt[10]
			}
		}
		b.ReportMetric(worst, "worst-app-error-at-10pct")
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(compress.FPVaxx, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.VectorDiff, "bodytrack-vector-diff")
		b.ReportMetric(r.PSNR, "bodytrack-psnr-db")
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	cfg := benchCfg()
	cfg.Cycles = 3000
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationOverlap(cfg, []string{"ssca2"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].LatencyOff-rows[0].LatencyOn, "overlap-saving-cycles")
	}
}

func BenchmarkAblationPMT(b *testing.B) {
	cfg := benchCfg()
	cfg.Cycles = 3000
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPMT(cfg, []string{"ssca2"}, []int{8, 32})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Ratio-rows[0].Ratio, "pmt-32v8-ratio-gain")
	}
}

// --- Microbenchmarks of the core mechanisms -------------------------------

func benchBlocks(n int) []*value.Block {
	m, _ := workload.ByName("ssca2")
	src := m.NewSource(7, 0.75)
	blocks := make([]*value.Block, n)
	for i := range blocks {
		blocks[i] = src.NextBlock()
	}
	return blocks
}

// The encode benchmarks measure the production hot path: the fabric and
// the serve shard workers encode through CompressTransient, which rides
// the codec's reusable scratch (zero steady-state allocations).
func BenchmarkFPCompEncodeBlock(b *testing.B) {
	c := compress.NewFPComp()
	blocks := benchBlocks(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.CompressTransient(c, 1, blocks[i%len(blocks)])
	}
}

func BenchmarkFPVaxxEncodeBlock(b *testing.B) {
	c, err := compress.NewFPVaxx(10)
	if err != nil {
		b.Fatal(err)
	}
	blocks := benchBlocks(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.CompressTransient(c, 1, blocks[i%len(blocks)])
	}
}

func BenchmarkDIVaxxTransfer(b *testing.B) {
	factory, err := compress.FactoryFor(compress.DIVaxx, 2, 10)
	if err != nil {
		b.Fatal(err)
	}
	f := compress.NewFabric(2, factory)
	blocks := benchBlocks(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Transfer(0, 1, blocks[i%len(blocks)])
	}
}

// BenchmarkTCAMSearch exercises the bit-sliced match engine at the
// 256-entry point (the paper-scale PMT sweep lives in internal/tcam's
// engine-comparison grid alongside the retained naive oracle).
func BenchmarkTCAMSearch(b *testing.B) {
	const entries = 256
	t := tcam.NewTCAM(entries)
	for i := 0; i < entries; i++ {
		t.Insert(tcam.TEntry{Value: uint32(i) << 16, Mask: 0xFFFF})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Search(uint32(i) << 16 & 0xFF_FFFF)
	}
}

// BenchmarkNetworkCycle measures simulator speed: one fully-loaded
// 32-tile network cycle per iteration.
func BenchmarkNetworkCycle(b *testing.B) {
	sim, err := approxnoc.NewSimulator(approxnoc.DefaultOptions(approxnoc.FPVaxx, 10))
	if err != nil {
		b.Fatal(err)
	}
	blocks := benchBlocks(64)
	for i := 0; i < 64; i++ {
		sim.SendData(i%32, (i+5)%32, blocks[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%50 == 0 { // keep the network loaded
			sim.SendData(i%32, (i+5)%32, blocks[i%64])
		}
		sim.Step()
	}
}

// --- Serving-layer benchmarks ---------------------------------------------

// benchmarkGateway measures parallel gateway throughput: every bench
// goroutine is a client issuing one synchronous transfer at a time, so
// throughput scales with how well the shard pools absorb concurrency.
// blocks/sec and MB/s land in BENCH_*.json next to the serial numbers.
func benchmarkGateway(b *testing.B, shards int, locked bool) {
	const nodes = 32
	gw, err := serve.New(serve.Config{
		Nodes: nodes, Scheme: compress.DIVaxx, ThresholdPct: 10,
		Shards: shards, QueueDepth: 4096, MaxBatch: 32, Locked: locked,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	blocks := benchBlocks(256)
	var seq atomic.Uint64
	b.SetBytes(int64(4 * value.WordsPerBlock))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(seq.Add(1)) * 7919 // de-correlate the flows per client
		for pb.Next() {
			req := serve.Request{
				Src: i % nodes, Dst: (i*13 + 5) % nodes,
				Block:        blocks[i%len(blocks)],
				ThresholdPct: serve.DefaultThreshold,
			}
			for {
				_, err := gw.Do(req)
				if err == nil {
					break
				}
				if errors.Is(err, serve.ErrOverloaded) {
					runtime.Gosched()
					continue
				}
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "blocks/sec")
		b.ReportMetric(float64(b.N)*float64(4*value.WordsPerBlock)/1e6/sec, "MB/s")
	}
}

func BenchmarkGatewayShards1(b *testing.B) { benchmarkGateway(b, 1, false) }

func BenchmarkGatewayShards4(b *testing.B) { benchmarkGateway(b, 4, false) }

func BenchmarkGatewayShardsMaxProcs(b *testing.B) {
	benchmarkGateway(b, runtime.GOMAXPROCS(0), false)
}

// BenchmarkGatewayLocked4 is the contention comparator: the same load as
// BenchmarkGatewayShards4 but through one mutex-guarded codec pool.
func BenchmarkGatewayLocked4(b *testing.B) { benchmarkGateway(b, 4, true) }

func BenchmarkBetweenness(b *testing.B) {
	g, err := graph.RMAT(8, 6, 3)
	if err != nil {
		b.Fatal(err)
	}
	srcs := graph.SampleSources(g, 16, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Betweenness(g, srcs, nil)
	}
}

func BenchmarkAppBlackscholes(b *testing.B) {
	app, err := apps.ByName("blackscholes")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := app.Run(compress.DIVaxx, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadSource(b *testing.B) {
	m, _ := workload.ByName("blackscholes")
	src := m.NewSource(1, 0.75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.NextBlock()
	}
}
